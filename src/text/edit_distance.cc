#include "text/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace xrefine::text {

int EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

int EditDistanceAtMost(std::string_view a, std::string_view b,
                       int max_distance) {
  if (max_distance < 0) return 0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (std::abs(n - m) > max_distance) return max_distance + 1;
  if (n == 0) return m;
  if (m == 0) return n;

  const int kBig = max_distance + 1;
  std::vector<int> prev(static_cast<size_t>(m) + 1, kBig);
  std::vector<int> cur(static_cast<size_t>(m) + 1, kBig);
  for (int j = 0; j <= std::min(m, max_distance); ++j) prev[j] = j;

  for (int i = 1; i <= n; ++i) {
    int lo = std::max(1, i - max_distance);
    int hi = std::min(m, i + max_distance);
    std::fill(cur.begin(), cur.end(), kBig);
    if (lo == 1) cur[0] = (i <= max_distance) ? i : kBig;
    int row_best = kBig;
    for (int j = lo; j <= hi; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      int best = prev[j - 1] + cost;
      if (prev[j] + 1 < best) best = prev[j] + 1;
      if (cur[j - 1] + 1 < best) best = cur[j - 1] + 1;
      cur[j] = std::min(best, kBig);
      row_best = std::min(row_best, cur[j]);
    }
    if (row_best > max_distance) return kBig;
    std::swap(prev, cur);
  }
  return std::min(prev[m], kBig);
}

}  // namespace xrefine::text
