// Tests for the workload generators, query corruption, and the evaluation
// utilities (CG metric, oracle judge).
#include <gtest/gtest.h>

#include "eval/cumulated_gain.h"
#include "eval/oracle_judge.h"
#include "core/xrefine.h"
#include "index/index_builder.h"
#include "text/lexicon.h"
#include "workload/baseball_generator.h"
#include "workload/corruption.h"
#include "workload/dblp_generator.h"
#include "workload/xmark_generator.h"
#include "workload/query_generator.h"
#include "xml/xml_writer.h"

namespace xrefine::workload {
namespace {

TEST(DblpGeneratorTest, DeterministicForSeed) {
  DblpOptions options;
  options.num_authors = 20;
  auto a = GenerateDblp(options);
  auto b = GenerateDblp(options);
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  EXPECT_EQ(xml::WriteXml(a), xml::WriteXml(b));
}

TEST(DblpGeneratorTest, DifferentSeedsDiffer) {
  DblpOptions a;
  a.num_authors = 20;
  DblpOptions b = a;
  b.seed = 999;
  EXPECT_NE(xml::WriteXml(GenerateDblp(a)), xml::WriteXml(GenerateDblp(b)));
}

TEST(DblpGeneratorTest, ShapeFollowsFigure1) {
  DblpOptions options;
  options.num_authors = 10;
  auto doc = GenerateDblp(options);
  EXPECT_EQ(doc.tag(doc.root()), "bib");
  ASSERT_EQ(doc.children(doc.root()).size(), 10u);
  for (xml::NodeId author : doc.children(doc.root())) {
    EXPECT_EQ(doc.tag(author), "author");
    bool has_pubs = false;
    for (xml::NodeId child : doc.children(author)) {
      if (doc.tag(child) == "publications") {
        has_pubs = true;
        EXPECT_GE(doc.children(child).size(), options.min_publications_per_author);
        EXPECT_LE(doc.children(child).size(), options.max_publications_per_author);
      }
    }
    EXPECT_TRUE(has_pubs);
  }
}

TEST(DblpGeneratorTest, ScalesWithAuthors) {
  DblpOptions small;
  small.num_authors = 10;
  DblpOptions large = small;
  large.num_authors = 100;
  EXPECT_GT(GenerateDblp(large).NodeCount(),
            5 * GenerateDblp(small).NodeCount());
}

TEST(BaseballGeneratorTest, StructureMatchesOptions) {
  BaseballOptions options;
  options.num_leagues = 2;
  options.divisions_per_league = 3;
  options.teams_per_division = 2;
  options.players_per_team = 4;
  auto doc = GenerateBaseball(options);
  EXPECT_EQ(doc.tag(doc.root()), "season");
  size_t leagues = 0;
  size_t players = 0;
  for (xml::NodeId id = 0; id < doc.NodeCount(); ++id) {
    if (doc.tag(id) == "league") ++leagues;
    if (doc.tag(id) == "player") ++players;
  }
  EXPECT_EQ(leagues, 2u);
  EXPECT_EQ(players, 2u * 3u * 2u * 4u);
}

TEST(XmarkGeneratorTest, StructureAndDeterminism) {
  XmarkOptions options;
  options.num_regions = 3;
  options.items_per_region = 5;
  options.num_people = 10;
  options.num_auctions = 8;
  auto doc = GenerateXmark(options);
  EXPECT_EQ(doc.tag(doc.root()), "site");
  // Exactly three top-level sections.
  ASSERT_EQ(doc.children(doc.root()).size(), 3u);
  EXPECT_EQ(doc.tag(doc.children(doc.root())[0]), "regions");
  EXPECT_EQ(doc.tag(doc.children(doc.root())[1]), "people");
  EXPECT_EQ(doc.tag(doc.children(doc.root())[2]), "open_auctions");
  size_t items = 0;
  size_t people = 0;
  size_t auctions = 0;
  for (xml::NodeId id = 0; id < doc.NodeCount(); ++id) {
    if (doc.tag(id) == "item") ++items;
    if (doc.tag(id) == "person") ++people;
    if (doc.tag(id) == "auction") ++auctions;
  }
  EXPECT_EQ(items, 15u);
  EXPECT_EQ(people, 10u);
  EXPECT_EQ(auctions, 8u);
  // Deterministic for the seed.
  EXPECT_EQ(xml::WriteXml(doc), xml::WriteXml(GenerateXmark(options)));
}

TEST(XmarkGeneratorTest, EngineRefinesAuctionQueries) {
  auto doc = GenerateXmark({});
  auto corpus = index::BuildIndex(doc);
  auto lexicon = text::Lexicon::BuiltIn();
  core::XRefine engine(corpus.get(), &lexicon, {});
  // A typo over the auction vocabulary must be repaired even though the
  // document has only three coarse partitions.
  auto outcome = engine.RunText("antiqe guitar");
  ASSERT_FALSE(outcome.refined.empty());
  bool fixed = false;
  for (const auto& r : outcome.refined) {
    for (const auto& k : r.rq.keywords) {
      if (k == "antique") fixed = true;
    }
  }
  EXPECT_TRUE(fixed);
}

class CorruptorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DblpOptions options;
    options.num_authors = 60;
    doc_ = GenerateDblp(options);
    corpus_ = index::BuildIndex(doc_);
    lexicon_ = text::Lexicon::BuiltIn();
    corruptor_ =
        std::make_unique<Corruptor>(&corpus_->index(), &lexicon_);
  }

  xml::Document doc_;
  std::unique_ptr<index::IndexedCorpus> corpus_;
  text::Lexicon lexicon_;
  std::unique_ptr<Corruptor> corruptor_;
};

TEST_F(CorruptorTest, TypoProducesOutOfVocabularyTerm) {
  Random rng(4);
  CorruptedQuery cq;
  ASSERT_TRUE(corruptor_->Corrupt({"database", "query"}, CorruptionKind::kTypo,
                                  &rng, &cq));
  EXPECT_EQ(cq.intended, (core::Query{"database", "query"}));
  EXPECT_EQ(cq.corrupted.size(), 2u);
  bool has_oov = false;
  for (const auto& t : cq.corrupted) {
    if (!corpus_->index().Contains(t)) has_oov = true;
  }
  EXPECT_TRUE(has_oov);
}

TEST_F(CorruptorTest, SpuriousSplitAddsOneTerm) {
  Random rng(4);
  CorruptedQuery cq;
  ASSERT_TRUE(corruptor_->Corrupt({"database"}, CorruptionKind::kSpuriousSplit,
                                  &rng, &cq));
  EXPECT_EQ(cq.corrupted.size(), 2u);
  EXPECT_EQ(cq.corrupted[0] + cq.corrupted[1], "database");
}

TEST_F(CorruptorTest, SpuriousMergeJoinsAdjacentTerms) {
  Random rng(4);
  CorruptedQuery cq;
  ASSERT_TRUE(corruptor_->Corrupt({"skyline", "computation"},
                                  CorruptionKind::kSpuriousMerge, &rng, &cq));
  ASSERT_EQ(cq.corrupted.size(), 1u);
  EXPECT_EQ(cq.corrupted[0], "skylinecomputation");
}

TEST_F(CorruptorTest, OverRestrictAppendsTerm) {
  Random rng(4);
  CorruptedQuery cq;
  ASSERT_TRUE(corruptor_->Corrupt({"database", "query"},
                                  CorruptionKind::kOverRestrict, &rng, &cq));
  EXPECT_EQ(cq.corrupted.size(), 3u);
}

TEST_F(CorruptorTest, InapplicableKindReturnsFalse) {
  Random rng(4);
  CorruptedQuery cq;
  // No adjacent pair to merge in a single-term query.
  EXPECT_FALSE(corruptor_->Corrupt({"xml"}, CorruptionKind::kSpuriousMerge,
                                   &rng, &cq));
}

TEST_F(CorruptorTest, CorruptAnyFindsSomething) {
  Random rng(4);
  CorruptedQuery cq;
  EXPECT_TRUE(corruptor_->CorruptAny({"database", "query", "processing"},
                                     &rng, &cq));
  EXPECT_FALSE(cq.description.empty());
}

TEST_F(CorruptorTest, QueryGeneratorPoolsAreAnswerableBeforeCorruption) {
  QueryGeneratorOptions options;
  options.target_tag = "inproceedings";
  QueryGenerator qgen(&doc_, corpus_.get(), corruptor_.get(), options);
  auto pool = qgen.GeneratePool(20);
  ASSERT_GE(pool.size(), 10u);
  for (const auto& cq : pool) {
    // Every intended term is in the corpus (sampled from real content).
    for (const auto& t : cq.intended) {
      EXPECT_TRUE(corpus_->index().Contains(t)) << t;
    }
    EXPECT_GE(cq.intended.size(), options.min_terms);
    EXPECT_NE(cq.intended, cq.corrupted);
  }
}

TEST_F(CorruptorTest, KindNamesAreUnique) {
  std::vector<CorruptionKind> kinds = {
      CorruptionKind::kTypo,          CorruptionKind::kSpuriousSplit,
      CorruptionKind::kSpuriousMerge, CorruptionKind::kSynonymMismatch,
      CorruptionKind::kAcronym,       CorruptionKind::kStemVariant,
      CorruptionKind::kOverRestrict};
  std::set<std::string> names;
  for (auto kind : kinds) names.insert(CorruptionKindName(kind));
  EXPECT_EQ(names.size(), kinds.size());
}

}  // namespace
}  // namespace xrefine::workload

namespace xrefine::eval {
namespace {

TEST(CumulatedGainTest, MatchesDefinition) {
  std::vector<int> gains = {3, 0, 2, 1};
  auto cg = CumulatedGain(gains);
  ASSERT_EQ(cg.size(), 4u);
  EXPECT_DOUBLE_EQ(cg[0], 3);
  EXPECT_DOUBLE_EQ(cg[1], 3);
  EXPECT_DOUBLE_EQ(cg[2], 5);
  EXPECT_DOUBLE_EQ(cg[3], 6);
  EXPECT_DOUBLE_EQ(CumulatedGainAt(gains, 2), 3);
  EXPECT_DOUBLE_EQ(CumulatedGainAt(gains, 10), 6);  // zero padded
  EXPECT_DOUBLE_EQ(CumulatedGainAt({}, 4), 0);
}

TEST(CumulatedGainTest, DiscountedVariant) {
  std::vector<int> gains = {3, 3};
  // DCG = 3 + 3/log2(2) = 6.
  EXPECT_DOUBLE_EQ(DiscountedCumulatedGainAt(gains, 2), 6.0);
  std::vector<int> later = {0, 0, 3};
  EXPECT_LT(DiscountedCumulatedGainAt(later, 3), 3.0);
}

TEST(CumulatedGainTest, MeanOverQueries) {
  std::vector<std::vector<int>> per_query = {{3, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(MeanCumulatedGainAt(per_query, 1), 2.0);
  EXPECT_DOUBLE_EQ(MeanCumulatedGainAt(per_query, 2), 2.5);
  EXPECT_DOUBLE_EQ(MeanCumulatedGainAt({}, 2), 0.0);
}

TEST(OracleJudgeTest, ExactRecoveryIsHighlyRelevant) {
  workload::CorruptedQuery gt;
  gt.intended = {"skyline", "computation"};
  gt.corrupted = {"skylne", "computation"};
  core::RankedRq rq;
  rq.rq.keywords = {"computation", "skyline"};
  rq.results.push_back(slca::SlcaResult{xml::Dewey({0, 1}), 0});
  EXPECT_EQ(JudgeRelevance(gt, rq), 3);
}

TEST(OracleJudgeTest, EmptyResultsAreIrrelevant) {
  workload::CorruptedQuery gt;
  gt.intended = {"a", "b"};
  core::RankedRq rq;
  rq.rq.keywords = {"a", "b"};
  EXPECT_EQ(JudgeRelevance(gt, rq), 0);
}

TEST(OracleJudgeTest, PartialOverlapGraded) {
  workload::CorruptedQuery gt;
  gt.intended = {"a", "b", "c"};
  core::RankedRq partial;
  partial.rq.keywords = {"a", "b"};  // jaccard 2/3
  partial.results.push_back(slca::SlcaResult{xml::Dewey({0}), 0});
  EXPECT_EQ(JudgeRelevance(gt, partial), 2);
  core::RankedRq weak;
  weak.rq.keywords = {"a", "x", "y"};  // jaccard 1/5
  weak.results.push_back(slca::SlcaResult{xml::Dewey({0}), 0});
  EXPECT_EQ(JudgeRelevance(gt, weak), 0);
}

TEST(OracleJudgeTest, JudgeRankingProducesGainVector) {
  workload::CorruptedQuery gt;
  gt.intended = {"a", "b"};
  core::RankedRq exact;
  exact.rq.keywords = {"a", "b"};
  exact.results.push_back(slca::SlcaResult{xml::Dewey({0}), 0});
  core::RankedRq empty;
  empty.rq.keywords = {"a", "b"};
  auto gains = JudgeRanking(gt, {exact, empty});
  EXPECT_EQ(gains, (std::vector<int>{3, 0}));
}

TEST(OracleJudgeTest, JaccardBasics) {
  EXPECT_DOUBLE_EQ(KeywordJaccard({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(KeywordJaccard({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(KeywordJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(KeywordJaccard({}, {}), 1.0);
}

}  // namespace
}  // namespace xrefine::eval
