file(REMOVE_RECURSE
  "CMakeFiles/xrefine_common.dir/logging.cc.o"
  "CMakeFiles/xrefine_common.dir/logging.cc.o.d"
  "CMakeFiles/xrefine_common.dir/random.cc.o"
  "CMakeFiles/xrefine_common.dir/random.cc.o.d"
  "CMakeFiles/xrefine_common.dir/status.cc.o"
  "CMakeFiles/xrefine_common.dir/status.cc.o.d"
  "CMakeFiles/xrefine_common.dir/string_util.cc.o"
  "CMakeFiles/xrefine_common.dir/string_util.cc.o.d"
  "libxrefine_common.a"
  "libxrefine_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrefine_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
