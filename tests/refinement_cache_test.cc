// Tests for core::RefinementCache: canonical keying, single-flight
// coalescing (leader/waiter protocol, cancel isolation, leader-failure
// re-election), epoch and rule-set invalidation, and TinyLFU-bounded
// admission. The multi-threaded cases double as the TSan stress surface
// for the cache (run under -fsanitize=thread in the build matrix).
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/status.h"
#include "core/refine_common.h"
#include "core/refinement_cache.h"
#include "core/xrefine.h"
#include "tests/test_helpers.h"
#include "text/lexicon.h"

namespace xrefine::core {
namespace {

using metrics::Registry;

// Global counters accumulate across tests in one binary: always assert on
// deltas against a snapshot, never on absolute values.
struct CacheCounters {
  uint64_t hits, misses, coalesced_waits, evictions, epoch_invalidations;
  uint64_t probe_records;

  static CacheCounters Take() {
    Registry& r = Registry::Global();
    return CacheCounters{r.counter("cache.hits")->value(),
                         r.counter("cache.misses")->value(),
                         r.counter("cache.coalesced_waits")->value(),
                         r.counter("cache.evictions")->value(),
                         r.counter("cache.epoch_invalidations")->value(),
                         r.histogram("query.cache_probe_us")->count()};
  }
};

// A recognisable outcome: the marker rides in stats.slca_calls so tests can
// tell whose computation produced the value they got back.
RefineOutcome MakeOutcome(size_t marker) {
  RefineOutcome o;
  o.needs_refinement = false;
  o.stats.slca_calls = marker;
  return o;
}

class RefinementCacheTest : public ::testing::Test {
 protected:
  RefinementCacheTest() : corpus_(testutil::MakeFigure1Corpus()) {}

  std::unique_ptr<RefinementCache> MakeCache(ResultCacheOptions options = {}) {
    options.enabled = true;
    return std::make_unique<RefinementCache>(corpus_.index.get(), options);
  }

  testutil::Corpus corpus_;
};

TEST_F(RefinementCacheTest, HitServesCachedOutcomeWithoutRecompute) {
  auto cache = MakeCache();
  const Query q{"database", "xml"};
  std::atomic<int> computes{0};
  auto compute = [&] {
    computes.fetch_add(1);
    return MakeOutcome(7);
  };

  CacheCounters before = CacheCounters::Take();
  RefineOutcome first = cache->GetOrCompute(q, nullptr, compute);
  RefineOutcome second = cache->GetOrCompute(q, nullptr, compute);
  CacheCounters after = CacheCounters::Take();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(first.stats.slca_calls, 7u);
  EXPECT_EQ(second.stats.slca_calls, 7u);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.coalesced_waits, before.coalesced_waits);
  // Every probe lands one cache_probe_us sample, hit or miss.
  EXPECT_EQ(after.probe_records, before.probe_records + 2);
  EXPECT_EQ(cache->entries(), 1u);
}

TEST_F(RefinementCacheTest, CanonicalKeyNormalizesSpellingOrderAndDuplicates) {
  // Stemming + sorting + dedup: all spellings of one information need land
  // in one bucket.
  EXPECT_EQ(RefinementCache::CanonicalKey({"database", "xml"}),
            RefinementCache::CanonicalKey({"XML", "databases"}));
  EXPECT_EQ(RefinementCache::CanonicalKey({"xml", "xml", "database"}),
            RefinementCache::CanonicalKey({"database", "xml"}));
  // Different stems stay distinct, and the separator prevents boundary
  // collisions between multi-term keys.
  EXPECT_NE(RefinementCache::CanonicalKey({"database", "xml"}),
            RefinementCache::CanonicalKey({"database", "stream"}));
  EXPECT_NE(RefinementCache::CanonicalKey({"ab", "c"}),
            RefinementCache::CanonicalKey({"a", "bc"}));
}

TEST_F(RefinementCacheTest, SameBucketDifferentExactTermsRecomputes) {
  // "xml database" and "database xml" share a canonical bucket, but the
  // refined-query strings echo the user's exact order — a bucket hit with
  // different exact terms must recompute, not serve the other spelling.
  auto cache = MakeCache();
  const Query a{"database", "xml"};
  const Query b{"xml", "database"};
  ASSERT_EQ(RefinementCache::CanonicalKey(a), RefinementCache::CanonicalKey(b));

  std::atomic<int> computes{0};
  auto outcome_a =
      cache->GetOrCompute(a, nullptr, [&] { computes.fetch_add(1); return MakeOutcome(1); });
  auto outcome_b =
      cache->GetOrCompute(b, nullptr, [&] { computes.fetch_add(1); return MakeOutcome(2); });
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(outcome_a.stats.slca_calls, 1u);
  EXPECT_EQ(outcome_b.stats.slca_calls, 2u);

  // One bucket, so the latest exact query owns the slot: `b` now hits,
  // `a` recomputes again.
  EXPECT_EQ(cache->entries(), 1u);
  auto again_b =
      cache->GetOrCompute(b, nullptr, [&] { computes.fetch_add(1); return MakeOutcome(3); });
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(again_b.stats.slca_calls, 2u);
}

TEST_F(RefinementCacheTest, EpochBumpInvalidatesWholesale) {
  auto cache = MakeCache();
  const Query q{"database", "xml"};
  std::atomic<int> computes{0};
  auto compute = [&] { computes.fetch_add(1); return MakeOutcome(9); };

  (void)cache->GetOrCompute(q, nullptr, compute);
  ASSERT_EQ(computes.load(), 1);

  CacheCounters before = CacheCounters::Take();
  corpus_.index->BumpEpochForTesting();
  RefineOutcome after_bump = cache->GetOrCompute(q, nullptr, compute);
  CacheCounters after = CacheCounters::Take();

  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(after_bump.stats.slca_calls, 9u);
  EXPECT_EQ(after.epoch_invalidations, before.epoch_invalidations + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits);
}

TEST_F(RefinementCacheTest, InvalidateAllDropsEntriesAndBlocksStaleInsert) {
  auto cache = MakeCache();
  std::atomic<int> computes{0};
  auto compute = [&] { computes.fetch_add(1); return MakeOutcome(1); };
  (void)cache->GetOrCompute({"database"}, nullptr, compute);
  (void)cache->GetOrCompute({"xml"}, nullptr, compute);
  ASSERT_EQ(cache->entries(), 2u);

  cache->InvalidateAll();
  EXPECT_EQ(cache->entries(), 0u);
  (void)cache->GetOrCompute({"database"}, nullptr, compute);
  EXPECT_EQ(computes.load(), 3);

  // A computation that straddles InvalidateAll must not insert its result:
  // the rule set it was computed under is retired.
  auto straddling = [&] {
    computes.fetch_add(1);
    cache->InvalidateAll();
    return MakeOutcome(2);
  };
  RefineOutcome out = cache->GetOrCompute({"stream"}, nullptr, straddling);
  EXPECT_EQ(out.stats.slca_calls, 2u);  // caller still gets the result
  EXPECT_EQ(cache->entries(), 0u);      // but the map stays clean
}

TEST_F(RefinementCacheTest, FailedComputationsAreNeverCached) {
  auto cache = MakeCache();
  const Query q{"database"};
  std::atomic<int> computes{0};
  auto failing = [&] {
    computes.fetch_add(1);
    RefineOutcome o;
    o.status = Status::IoError("store fell over");
    return o;
  };
  RefineOutcome first = cache->GetOrCompute(q, nullptr, failing);
  EXPECT_FALSE(first.status.ok());
  EXPECT_EQ(cache->entries(), 0u);
  RefineOutcome second = cache->GetOrCompute(q, nullptr, failing);
  EXPECT_FALSE(second.status.ok());
  EXPECT_EQ(computes.load(), 2);
}

TEST_F(RefinementCacheTest, SingleFlightCoalescesConcurrentIdenticalQueries) {
  auto cache = MakeCache();
  const Query q{"skyline", "stream"};
  constexpr int kThreads = 8;

  std::atomic<int> computes{0};
  std::atomic<bool> release{false};
  auto compute = [&] {
    computes.fetch_add(1);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return MakeOutcome(42);
  };

  CacheCounters before = CacheCounters::Take();
  std::vector<RefineOutcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { outcomes[i] = cache->GetOrCompute(q, nullptr, compute); });
  }
  // Exactly one thread becomes the leader and enters compute; wait for the
  // other seven to park on the flight before releasing it, so this test
  // exercises real coalescing rather than sequential hits.
  while (CacheCounters::Take().coalesced_waits <
         before.coalesced_waits + kThreads - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  CacheCounters after = CacheCounters::Take();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.coalesced_waits, before.coalesced_waits + kThreads - 1);
  for (const RefineOutcome& o : outcomes) {
    EXPECT_TRUE(o.status.ok());
    EXPECT_EQ(o.stats.slca_calls, 42u);
  }
  // Every probe resolved as exactly one of hit / wait / miss.
  EXPECT_EQ((after.hits - before.hits) + (after.misses - before.misses) +
                (after.coalesced_waits - before.coalesced_waits),
            static_cast<uint64_t>(kThreads));
}

TEST_F(RefinementCacheTest, CancelledWaiterDoesNotPoisonTheFlight) {
  auto cache = MakeCache();
  const Query q{"database", "xml"};

  std::atomic<int> computes{0};
  std::atomic<bool> release{false};
  auto compute = [&] {
    computes.fetch_add(1);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return MakeOutcome(5);
  };

  CacheCounters before = CacheCounters::Take();
  RefineOutcome leader_out;
  std::thread leader(
      [&] { leader_out = cache->GetOrCompute(q, nullptr, compute); });
  while (computes.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<bool> cancel{false};
  RefineControl control;
  control.cancel = &cancel;
  RefineOutcome waiter_out;
  std::thread waiter(
      [&] { waiter_out = cache->GetOrCompute(q, &control, compute); });
  while (CacheCounters::Take().coalesced_waits < before.coalesced_waits + 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Cancel only the waiter: it must return promptly with DeadlineExceeded
  // while the leader keeps computing, unaffected.
  cancel.store(true);
  waiter.join();
  EXPECT_TRUE(waiter_out.status.IsDeadlineExceeded());

  release.store(true, std::memory_order_release);
  leader.join();
  EXPECT_TRUE(leader_out.status.ok());
  EXPECT_EQ(leader_out.stats.slca_calls, 5u);
  EXPECT_EQ(computes.load(), 1);

  // The flight completed and published: the next probe is a pure hit.
  std::atomic<int> late_computes{0};
  RefineOutcome hit = cache->GetOrCompute(
      q, nullptr, [&] { late_computes.fetch_add(1); return MakeOutcome(0); });
  EXPECT_EQ(late_computes.load(), 0);
  EXPECT_EQ(hit.stats.slca_calls, 5u);
}

TEST_F(RefinementCacheTest, WaiterReelectsAfterLeaderFailure) {
  auto cache = MakeCache();
  const Query q{"database", "xml"};

  // First invocation fails (after a waiter has joined); the re-elected
  // leader's invocation succeeds.
  std::atomic<int> computes{0};
  std::atomic<bool> release{false};
  auto compute = [&]() -> RefineOutcome {
    int n = computes.fetch_add(1) + 1;
    if (n == 1) {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      RefineOutcome o;
      o.status = Status::IoError("transient store failure");
      return o;
    }
    return MakeOutcome(11);
  };

  CacheCounters before = CacheCounters::Take();
  RefineOutcome first_out, second_out;
  std::thread first([&] { first_out = cache->GetOrCompute(q, nullptr, compute); });
  while (computes.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread second(
      [&] { second_out = cache->GetOrCompute(q, nullptr, compute); });
  while (CacheCounters::Take().coalesced_waits < before.coalesced_waits + 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true, std::memory_order_release);
  first.join();
  second.join();

  // The original leader surfaces its own failure; the waiter does not
  // inherit it — it re-probes, becomes the new leader, and succeeds.
  EXPECT_FALSE(first_out.status.ok());
  EXPECT_TRUE(second_out.status.ok());
  EXPECT_EQ(second_out.stats.slca_calls, 11u);
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(cache->entries(), 1u);
}

TEST_F(RefinementCacheTest, TinyLfuAdmissionKeepsColdNewcomersOut) {
  ResultCacheOptions options;
  options.max_entries = 2;
  auto cache = MakeCache(options);
  std::atomic<int> computes{0};
  auto compute = [&] { computes.fetch_add(1); return MakeOutcome(1); };

  (void)cache->GetOrCompute({"database"}, nullptr, compute);
  (void)cache->GetOrCompute({"xml"}, nullptr, compute);
  ASSERT_EQ(cache->entries(), 2u);

  // First sight of "stream": its sketch estimate ties the LRU victim's, so
  // the duel rejects it — computed, returned, not admitted.
  CacheCounters before = CacheCounters::Take();
  (void)cache->GetOrCompute({"stream"}, nullptr, compute);
  EXPECT_EQ(cache->entries(), 2u);
  EXPECT_EQ(CacheCounters::Take().evictions, before.evictions);

  // Second sight: the probe itself made it hotter than the victim, so now
  // it displaces the coldest resident.
  (void)cache->GetOrCompute({"stream"}, nullptr, compute);
  EXPECT_EQ(cache->entries(), 2u);
  EXPECT_EQ(CacheCounters::Take().evictions, before.evictions + 1);
  std::atomic<int> late_computes{0};
  RefineOutcome hit = cache->GetOrCompute(
      {"stream"}, nullptr,
      [&] { late_computes.fetch_add(1); return MakeOutcome(0); });
  EXPECT_EQ(late_computes.load(), 0);
  EXPECT_TRUE(hit.status.ok());
}

// TSan stress: many threads hammer one cache-enabled engine with a small
// query mix while cancels race the in-flight computations and the rule set
// is swapped mid-stream. No assertion beyond "every outcome is OK or
// DeadlineExceeded" — the point is that TSan sees no race and the lock-rank
// checker sees no inversion.
TEST_F(RefinementCacheTest, EngineSingleFlightStressWithRacingCancels) {
  auto lexicon = text::Lexicon::BuiltIn();
  XRefineOptions options;
  options.result_cache.enabled = true;
  XRefine engine(corpus_.index.get(), &lexicon, options);
  ASSERT_NE(engine.result_cache(), nullptr);

  const std::vector<Query> queries = {
      {"databse", "xml"}, {"skyline", "stream"}, {"xml", "databse"}};
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 30;

  std::atomic<bool> cancel{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RefineControl control;
      // Half the threads run cancellable; the shared flag flips under them.
      if (t % 2 == 0) control.cancel = &cancel;
      for (int i = 0; i < kItersPerThread; ++i) {
        const Query& q = queries[(t + i) % queries.size()];
        RefineOutcome out = engine.Run(q, &control);
        if (!out.status.ok() && !out.status.IsDeadlineExceeded()) {
          failures.fetch_add(1);
        }
        if (t == 0 && i % 10 == 5) {
          // Rule-set swap mid-stream: exercises InvalidateAll racing
          // in-flight computations and waiters.
          engine.AttachQueryLog(QueryLog{});
        }
        cancel.store(i % 7 == 3, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The cache still serves correctly after the storm.
  cancel.store(false);
  RefineOutcome out = engine.Run(queries[0], nullptr);
  EXPECT_TRUE(out.status.ok());
}

}  // namespace
}  // namespace xrefine::core
