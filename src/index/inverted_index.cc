#include "index/inverted_index.h"

#include <algorithm>

namespace xrefine::index {

void InvertedIndex::Append(std::string_view keyword, Posting posting) {
  lists_[std::string(keyword)].push_back(std::move(posting));
}

const PostingList* InvertedIndex::Find(std::string_view keyword) const {
  auto it = lists_.find(std::string(keyword));
  return it == lists_.end() ? nullptr : &it->second;
}

const FlatPostingList* InvertedIndex::FindFlat(std::string_view keyword) const {
  const PostingList* list = Find(keyword);
  if (list == nullptr) return nullptr;
  MutexLock lock(&flat_mu_);
  auto [it, inserted] = flat_lists_.try_emplace(std::string(keyword));
  if (inserted) it->second = FlatPostingList::FromPostings(*list);
  return &it->second;
}

std::vector<std::string> InvertedIndex::Vocabulary() const {
  std::vector<std::string> words;
  words.reserve(lists_.size());
  for (const auto& [word, _] : lists_) words.push_back(word);
  std::sort(words.begin(), words.end());
  return words;
}

}  // namespace xrefine::index
