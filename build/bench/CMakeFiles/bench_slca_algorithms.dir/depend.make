# Empty dependencies file for bench_slca_algorithms.
# This may be replaced when dependencies are built.
