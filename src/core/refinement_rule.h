// Refinement rules (Definition 3.5): S1 ->op S2 with a dissimilarity score
// ds_r. The four operations of Section III-B are term deletion (implicit,
// handled by the DP), term merging, term split, and term substitution
// (spelling / synonym / acronym / stemming).
#ifndef XREFINE_CORE_REFINEMENT_RULE_H_
#define XREFINE_CORE_REFINEMENT_RULE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/refined_query.h"

namespace xrefine::core {

enum class RefineOp {
  kDeletion,
  kMerging,
  kSplit,
  kSubstitution,
};

std::string RefineOpName(RefineOp op);

struct RefinementRule {
  /// Contiguous keyword subsequence of the original query this rule
  /// rewrites (1 keyword for split/substitution, >=2 for merging and for
  /// acronym formation).
  std::vector<std::string> lhs;
  /// Replacement keywords.
  std::vector<std::string> rhs;
  RefineOp op = RefineOp::kSubstitution;
  /// Dissimilarity ds_r: e.g. 1 per merge/split, the edit distance for a
  /// spelling fix, the lexicon cost for a synonym.
  double ds = 1.0;

  std::string DebugString() const;
};

/// A set of rules indexed for the getOptimalRQ dynamic program: rules are
/// looked up by the last keyword of their LHS (the DP extends prefixes of Q
/// one position at a time). Term deletion is represented by
/// `deletion_cost()` rather than by explicit rules; the paper requires it
/// to cost more than any other unit operation.
class RuleSet {
 public:
  RuleSet() = default;

  void Add(RefinementRule rule);

  const std::vector<RefinementRule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Indices of rules whose LHS ends with `keyword` (nullptr when none).
  const std::vector<size_t>* RulesEndingWith(const std::string& keyword) const;

  const RefinementRule& rule(size_t i) const { return rules_[i]; }

  double deletion_cost() const { return deletion_cost_; }
  void set_deletion_cost(double cost) { deletion_cost_ = cost; }

  /// All RHS keywords across the rule set that are not in `q` — the
  /// getNewKeywords(Q) of Algorithms 1 and 2.
  std::vector<std::string> NewKeywords(const Query& q) const;

 private:
  std::vector<RefinementRule> rules_;
  std::unordered_map<std::string, std::vector<size_t>> by_lhs_last_;
  double deletion_cost_ = 2.0;
};

}  // namespace xrefine::core

#endif  // XREFINE_CORE_REFINEMENT_RULE_H_
