#include "workload/xmark_generator.h"

#include <cmath>
#include <string>

#include "common/random.h"
#include "workload/vocabulary.h"

namespace xrefine::workload {

namespace {

const std::vector<std::string>& ItemNouns() {
  static const auto* kNouns = new std::vector<std::string>{
      "guitar",  "camera",   "bicycle", "laptop",  "watch",  "painting",
      "table",   "lamp",     "stamp",   "coin",    "book",   "vase",
      "carpet",  "necklace", "piano",   "printer", "statue", "telescope",
      "clock",   "mirror",
  };
  return *kNouns;
}

const std::vector<std::string>& Adjectives() {
  static const auto* kAdjectives = new std::vector<std::string>{
      "antique", "vintage", "rare",   "modern", "classic", "portable",
      "golden",  "silver",  "wooden", "large",  "compact", "restored",
  };
  return *kAdjectives;
}

template <typename V>
const std::string& PickFrom(const V& v, Random* rng) {
  return v[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(v.size()) - 1))];
}

// Templated over the builder (xml::Document or xml::DagBuilder) so one
// random stream drives both representations of the same logical tree — see
// dblp_generator.cc for the discipline.
template <typename Builder>
void BuildXmarkInto(Builder& doc, const XmarkOptions& options) {
  Random rng(options.seed);
  auto scaled = [&](size_t n) {
    return static_cast<size_t>(
        std::llround(static_cast<double>(n) * options.scale));
  };
  size_t items_per_region = scaled(options.items_per_region);
  size_t num_people = scaled(options.num_people);
  size_t num_auctions = scaled(options.num_auctions);

  auto site = doc.CreateRoot("site");

  // regions / region / item.
  auto regions = doc.AddChild(site, "regions");
  std::vector<std::string> item_names;
  for (size_t r = 0; r < options.num_regions; ++r) {
    auto region = doc.AddChild(regions, "region");
    auto rname = doc.AddChild(region, "name");
    static const char* kRegionNames[] = {"africa", "asia", "australia",
                                         "europe", "namerica", "samerica"};
    doc.AppendText(rname, kRegionNames[r % 6]);
    for (size_t i = 0; i < items_per_region; ++i) {
      auto item = doc.AddChild(region, "item");
      std::string item_name = PickFrom(Adjectives(), &rng) + " " +
                              PickFrom(ItemNouns(), &rng);
      item_names.push_back(item_name);
      doc.AppendText(doc.AddChild(item, "name"), item_name);
      auto description = doc.AddChild(item, "description");
      std::string text = PickFrom(Adjectives(), &rng);
      for (int w = 0; w < 4; ++w) {
        text += " " + PickFrom(TitleTerms(), &rng);
      }
      doc.AppendText(description, text);
      doc.AppendText(doc.AddChild(item, "payment"),
                     rng.OneIn(0.5) ? "creditcard" : "cash");
      doc.AppendText(doc.AddChild(item, "quantity"),
                     std::to_string(rng.Uniform(1, 5)));
    }
  }

  // people / person.
  auto people = doc.AddChild(site, "people");
  std::vector<std::string> person_names;
  for (size_t p = 0; p < num_people; ++p) {
    auto person = doc.AddChild(people, "person");
    std::string full = PickFrom(FirstNames(), &rng) + " " +
                       PickFrom(LastNames(), &rng);
    person_names.push_back(full);
    doc.AppendText(doc.AddChild(person, "name"), full);
    std::string handle = full;
    for (auto& c : handle) {
      if (c == ' ') c = '.';
    }
    doc.AppendText(doc.AddChild(person, "email"), handle + " example com");
    doc.AppendText(doc.AddChild(person, "city"),
                   PickFrom(TeamCities(), &rng));
    size_t interests = static_cast<size_t>(rng.Uniform(0, 3));
    for (size_t i = 0; i < interests; ++i) {
      doc.AppendText(doc.AddChild(person, "interest"),
                     PickFrom(ItemNouns(), &rng));
    }
  }

  // open_auctions / auction.
  auto auctions = doc.AddChild(site, "open_auctions");
  for (size_t a = 0; a < num_auctions; ++a) {
    auto auction = doc.AddChild(auctions, "auction");
    doc.AppendText(doc.AddChild(auction, "itemname"),
                   PickFrom(item_names, &rng));
    doc.AppendText(doc.AddChild(auction, "seller"),
                   PickFrom(person_names, &rng));
    int64_t initial = rng.Uniform(5, 500);
    doc.AppendText(doc.AddChild(auction, "initial"),
                   std::to_string(initial));
    size_t bids = static_cast<size_t>(rng.Uniform(0, 5));
    int64_t current = initial;
    for (size_t b = 0; b < bids; ++b) {
      auto bidder = doc.AddChild(auction, "bidder");
      doc.AppendText(doc.AddChild(bidder, "personref"),
                     PickFrom(person_names, &rng));
      current += rng.Uniform(1, 50);
      doc.AppendText(doc.AddChild(bidder, "increase"),
                     std::to_string(current));
    }
    doc.AppendText(doc.AddChild(auction, "current"),
                   std::to_string(current));
  }
}

}  // namespace

xml::Document GenerateXmark(const XmarkOptions& options) {
  xml::Document doc;
  BuildXmarkInto(doc, options);
  return doc;
}

xml::DagDocument GenerateXmarkDag(const XmarkOptions& options) {
  xml::DagBuilder builder;
  BuildXmarkInto(builder, options);
  return builder.Finalize();
}

}  // namespace xrefine::workload
