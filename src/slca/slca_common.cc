#include "slca/slca_common.h"

#include <algorithm>

namespace xrefine::slca {

namespace internal {

const SlcaMetrics& Metrics() {
  static const SlcaMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return SlcaMetrics{r.counter("slca.calls"),
                       r.counter("slca.elements_scanned"),
                       r.counter("slca.lookups")};
  }();
  return m;
}

}  // namespace internal

ptrdiff_t LeftMatch(const PostingSpan& span, const xml::DeweyRef& v) {
  // upper_bound on dewey order, then step left.
  ptrdiff_t lo = 0;
  ptrdiff_t hi = static_cast<ptrdiff_t>(span.size);
  while (lo < hi) {
    ptrdiff_t mid = (lo + hi) / 2;
    if (span.label(static_cast<size_t>(mid)) <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

ptrdiff_t RightMatch(const PostingSpan& span, const xml::DeweyRef& v) {
  ptrdiff_t lo = 0;
  ptrdiff_t hi = static_cast<ptrdiff_t>(span.size);
  while (lo < hi) {
    ptrdiff_t mid = (lo + hi) / 2;
    if (span.label(static_cast<size_t>(mid)) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t GallopLowerBound(const PostingSpan& span, size_t from,
                        const xml::DeweyRef& v) {
  if (from >= span.size || span.label(from) >= v) return from;
  // label(from) < v; double the probe distance until we bracket v.
  size_t bound = 1;
  while (from + bound < span.size && span.label(from + bound) < v) {
    bound <<= 1;
  }
  size_t lo = from + bound / 2 + 1;  // last probe < v
  size_t hi = std::min(from + bound, span.size);
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (span.label(mid) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t GallopUpperBound(const PostingSpan& span, size_t from,
                        const xml::DeweyRef& v) {
  if (from >= span.size || span.label(from) > v) return from;
  size_t bound = 1;
  while (from + bound < span.size && span.label(from + bound) <= v) {
    bound <<= 1;
  }
  size_t lo = from + bound / 2 + 1;  // last probe <= v
  size_t hi = std::min(from + bound, span.size);
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (span.label(mid) <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<SlcaResult> KeepSmallest(std::vector<SlcaResult> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const SlcaResult& a, const SlcaResult& b) {
              return a.dewey < b.dewey;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // In document order an ancestor's descendants follow it contiguously, so
  // dropping each element that is an ancestor of its successor removes all
  // non-smallest nodes.
  std::vector<SlcaResult> out;
  out.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + 1 < candidates.size() &&
        candidates[i].dewey.IsAncestor(candidates[i + 1].dewey)) {
      continue;
    }
    out.push_back(std::move(candidates[i]));
  }
  return out;
}

std::vector<SlcaResult> KeepSmallestPrefixes(
    const PostingSpan& anchor, std::vector<PrefixCandidate> candidates,
    const xml::NodeTypeTable& types) {
  auto label_of = [&](const PrefixCandidate& c) {
    return xml::DeweyRef(anchor.components + anchor.starts[c.index], c.depth);
  };
  // The anchor scan emits candidates in anchor document order, which gives
  // a strong structural guarantee: for i < j, candidate j's label is either
  // >= candidate i's (doc order) or a strict ancestor of it. (If label_j <
  // label_i with a diverging component, the underlying anchor postings
  // would violate v_i <= v_j; so label_j < label_i forces label_j to be a
  // prefix of label_i.) The smallest-filter therefore runs online against
  // the last kept candidate — no sort, one prefix comparison per candidate:
  //   - equal to or ancestor of the last kept: dominated, skip;
  //   - last kept is its ancestor: pop it (at most one pop — the stack is
  //     an increasing antichain, so deeper entries cannot also be
  //     ancestors), push the new candidate;
  //   - divergent: push.
  std::vector<PrefixCandidate> kept;
  for (const PrefixCandidate& c : candidates) {
    const xml::DeweyRef lc = label_of(c);
    bool dominated = false;
    while (!kept.empty()) {
      const xml::DeweyRef lb = label_of(kept.back());
      const size_t common = xml::CommonPrefixDepth(lb, lc);
      if (common == lc.len) {
        dominated = true;  // duplicate of, or ancestor of, the last kept
        break;
      }
      if (common == lb.len) {
        kept.pop_back();  // last kept is a strict ancestor: not smallest
        continue;
      }
      break;  // divergent siblings
    }
    if (!dominated) kept.push_back(c);
  }
  // Only the survivors are materialised; dominated candidates never touch
  // the heap.
  std::vector<SlcaResult> out;
  out.reserve(kept.size());
  for (const PrefixCandidate& c : kept) {
    out.push_back(SlcaResult{
        label_of(c).ToDewey(),
        AncestorTypeAtDepth(types, anchor.type(c.index), c.depth)});
  }
  return out;
}

xml::TypeId AncestorTypeAtDepth(const xml::NodeTypeTable& types,
                                xml::TypeId witness, size_t depth) {
  return types.AncestorAtDepth(witness, static_cast<uint32_t>(depth));
}

}  // namespace xrefine::slca
