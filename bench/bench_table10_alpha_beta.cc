// Table X reproduction: combined effect of the similarity and dependence
// scores — average CG@1..4 for different (alpha, beta) weightings of
// Formula 10.
//
// Expected shape: (1,1) beats similarity-only (1,0) and dependence-only
// (0,1); similarity matters more than dependence for the top-1 pick.
#include "bench/bench_util.h"
#include "eval/cumulated_gain.h"
#include "eval/oracle_judge.h"

namespace xrefine::bench {
namespace {

void Main() {
  PrintHeader("Table X: CG@1..4 by (alpha, beta)");
  Env env = MakeDblpEnv(1200);
  auto pool = MakePool(env, 60, "inproceedings", 987);

  std::vector<workload::CorruptedQuery> eligible;
  {
    core::XRefineOptions probe;
    probe.top_k = 4;
    for (const auto& cq : pool) {
      auto outcome = env.Run(cq.corrupted, probe);
      if (outcome.refined.size() >= 4) eligible.push_back(cq);
      if (eligible.size() >= 50) break;
    }
  }
  std::printf("%zu eligible queries\n", eligible.size());

  const std::pair<double, double> kWeights[] = {
      {1, 1}, {1, 0}, {0, 1}, {2, 1}, {1, 2}, {4, 1},
  };
  std::printf("%-12s %8s %8s %8s %8s\n", "[alpha,beta]", "CG[1]", "CG[2]",
              "CG[3]", "CG[4]");
  for (const auto& [alpha, beta] : kWeights) {
    core::XRefineOptions options;
    options.top_k = 4;
    options.ranking.alpha = alpha;
    options.ranking.beta = beta;
    std::vector<std::vector<int>> gains;
    for (const auto& cq : eligible) {
      auto outcome = env.Run(cq.corrupted, options);
      gains.push_back(eval::JudgeRanking(cq, outcome.refined));
    }
    std::printf("[%4.1f,%4.1f] %10.3f %8.3f %8.3f %8.3f\n", alpha, beta,
                eval::MeanCumulatedGainAt(gains, 1),
                eval::MeanCumulatedGainAt(gains, 2),
                eval::MeanCumulatedGainAt(gains, 3),
                eval::MeanCumulatedGainAt(gains, 4));
  }
}

}  // namespace
}  // namespace xrefine::bench

int main() {
  xrefine::bench::Main();
  return 0;
}
