#include "slca/scan_eager.h"

#include <algorithm>

namespace xrefine::slca {

std::vector<SlcaResult> ScanEagerSlca(const std::vector<PostingSpan>& lists,
                                      const xml::NodeTypeTable& types) {
  if (lists.empty()) return {};
  for (const auto& span : lists) {
    if (span.empty()) return {};
  }

  size_t anchor = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size < lists[anchor].size) anchor = i;
  }

  // cursors[i]: first posting with label >= current anchor node; advances
  // monotonically because anchors arrive in document order.
  std::vector<size_t> cursors(lists.size(), 0);

  uint64_t scanned = 0;
  uint64_t probes = 0;
  std::vector<PrefixCandidate> candidates;
  candidates.reserve(lists[anchor].size);
  for (size_t a = 0; a < lists[anchor].size; ++a) {
    ++scanned;
    const xml::DeweyRef v = lists[anchor].label(a);
    size_t depth = v.depth();
    for (size_t i = 0; i < lists.size() && depth > 0; ++i) {
      if (i == anchor) continue;
      const PostingSpan& span = lists[i];
      size_t& c = cursors[i];
      ++probes;
      while (c < span.size && span.label(c) < v) {
        ++c;
        ++scanned;
      }
      size_t best = 0;
      if (c > 0) {
        best = std::max(best, xml::CommonPrefixDepth(v, span.label(c - 1)));
      }
      if (c < span.size) {
        best = std::max(best, xml::CommonPrefixDepth(v, span.label(c)));
      }
      depth = std::min(depth, best);
    }
    if (depth == 0) continue;
    candidates.push_back(PrefixCandidate{static_cast<uint32_t>(a),
                                         static_cast<uint32_t>(depth)});
  }
  internal::Metrics().elements_scanned->Increment(scanned);
  internal::Metrics().lookups->Increment(probes);
  return KeepSmallestPrefixes(lists[anchor], std::move(candidates), types);
}

}  // namespace xrefine::slca
