// A from-scratch, non-validating XML parser sufficient for data-oriented
// documents (DBLP-style corpora): elements, attributes, character data,
// CDATA, comments, processing instructions, DOCTYPE, and the predefined
// entities. Attributes are materialised as child elements named after the
// attribute, so attribute values participate in keyword search like any
// other value term.
#ifndef XREFINE_XML_XML_PARSER_H_
#define XREFINE_XML_XML_PARSER_H_

#include <string_view>

#include "common/statusor.h"
#include "xml/document.h"

namespace xrefine::xml {

struct ParseOptions {
  /// When true (default), attributes become child elements; when false,
  /// attribute values are appended to the owning element's text.
  bool attributes_as_children = true;

  /// Maximum element nesting depth; deeper documents are rejected with
  /// Corruption (the parser is recursive-descent, so this bounds native
  /// stack usage on adversarial inputs).
  size_t max_depth = 512;

  /// When true, character data — element text and attribute values alike —
  /// is trimmed of leading/trailing whitespace, and whitespace-only runs
  /// are dropped entirely, so pretty-printed corpora parse to clean values.
  bool skip_whitespace_text = true;
};

/// Parses an XML document from a string buffer.
[[nodiscard]] StatusOr<Document> ParseXml(std::string_view input,
                            const ParseOptions& options = {});

/// Reads and parses an XML file from disk.
[[nodiscard]] StatusOr<Document> ParseXmlFile(const std::string& path,
                                const ParseOptions& options = {});

}  // namespace xrefine::xml

#endif  // XREFINE_XML_XML_PARSER_H_
