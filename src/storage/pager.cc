#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/timer.h"

namespace xrefine::storage {

// --- PageGuard ---------------------------------------------------------------

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    page_ = other.page_;
    other.pager_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

void PageGuard::MarkDirty() const {
  XR_DCHECK(page_ != nullptr);
  page_->dirty = true;
}

void PageGuard::Release() {
  if (pager_ != nullptr && page_ != nullptr) {
    pager_->Unpin(page_);
  }
  pager_ = nullptr;
  page_ = nullptr;
}

// --- Pager -------------------------------------------------------------------

const Pager::Metrics& Pager::GlobalMetrics() {
  static const Metrics m = [] {
    auto& r = metrics::Registry::Global();
    return Metrics{r.counter("pager.cache_hits"),
                   r.counter("pager.cache_misses"),
                   r.counter("pager.evictions"),
                   r.counter("pager.page_reads"),
                   r.counter("pager.page_writes"),
                   r.counter("pager.writeback_failures"),
                   r.counter("pager.single_flight_waits"),
                   r.histogram("pager.fetch_us"),
                   r.histogram("pager.latch_wait_us")};
  }();
  return m;
}

Pager::Pager(std::string path, PagerOptions options)
    : path_(std::move(path)), options_(options) {
  if (options_.max_cached_pages != 0 && options_.max_cached_pages < 16) {
    options_.max_cached_pages = 16;
  }
  if (in_memory()) options_.max_cached_pages = 0;  // nowhere to evict to
  if (options_.max_cached_pages != 0) {
    shard_capacity_ = options_.max_cached_pages / kNumShards;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }
}

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                             PagerOptions options) {
  std::unique_ptr<Pager> pager(new Pager(path, options));
  if (!pager->in_memory()) {
    XREFINE_RETURN_IF_ERROR(pager->OpenFile());
  }
  if (pager->page_count() == 0) {
    pager->NewPage();  // page 0: metadata (guard dropped; stays cached)
  }
  return pager;
}

Pager::~Pager() {
  Status st = Flush();
  if (!st.ok()) {
    XR_LOG(Error) << "pager flush on close failed: " << st;
  }
#ifndef NDEBUG
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [id, entry] : shard.cache) {
      if (entry.pins != 0) {
        XR_LOG(Error) << "page " << id << " still pinned at pager teardown";
      }
    }
  }
#endif
  if (fd_ >= 0) ::close(fd_);
}

Status Pager::OpenFile() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot open page file " + path_ + ": " +
                           std::strerror(errno));
  }
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IoError("cannot size page file " + path_ + ": " +
                           std::strerror(errno));
  }
  if (static_cast<uint64_t>(size) % kPageSize != 0) {
    return Status::Corruption("page file size " + std::to_string(size) +
                              " is not a multiple of the page size");
  }
  next_page_id_.store(static_cast<PageId>(size / kPageSize),
                      std::memory_order_release);
  return Status::OK();
}

Status Pager::ReadPageFromFile(PageId id, Page* page) {
  std::function<void()> hook;
  {
    MutexLock lock(&io_mu_);
    hook = read_hook_;
  }
  if (hook) hook();  // run outside io_mu_: hooks block to stage waiters
  {
    MutexLock lock(&io_mu_);
    if (fail_reads_after_ >= 0) {
      if (fail_reads_after_ == 0) {
        return Status::IoError("injected read failure for page " +
                               std::to_string(id));
      }
      --fail_reads_after_;
    }
  }
  XREFINE_RETURN_IF_ERROR(ReadFullAt(
      page->data, kPageSize,
      static_cast<off_t>(id) * static_cast<off_t>(kPageSize), id));
  page->id = id;
  page->dirty = false;
  return Status::OK();
}

Status Pager::ReadFullAt(char* buf, size_t n, off_t offset, PageId id) {
  size_t chunk_cap;
  {
    MutexLock lock(&io_mu_);
    chunk_cap = max_io_chunk_;
  }
  size_t done = 0;
  while (done < n) {
    size_t chunk = n - done;
    if (chunk_cap != 0 && chunk > chunk_cap) chunk = chunk_cap;
    ssize_t r = ::pread(fd_, buf + done, chunk,
                        offset + static_cast<off_t>(done));
    if (r < 0) {
      if (errno == EINTR) continue;  // interrupted before any transfer
      return Status::IoError("read of page " + std::to_string(id) +
                             " failed: " + std::strerror(errno));
    }
    if (r == 0) {
      // EOF inside a page that the bounds check said exists: truncation.
      return Status::IoError("short read of page " + std::to_string(id) +
                             " (EOF at byte " + std::to_string(done) + ")");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Pager::WriteFullAt(const char* buf, size_t n, off_t offset,
                          PageId id) {
  size_t chunk_cap;
  {
    MutexLock lock(&io_mu_);
    chunk_cap = max_io_chunk_;
  }
  size_t done = 0;
  while (done < n) {
    size_t chunk = n - done;
    if (chunk_cap != 0 && chunk > chunk_cap) chunk = chunk_cap;
    ssize_t w = ::pwrite(fd_, buf + done, chunk,
                         offset + static_cast<off_t>(done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write of page " + std::to_string(id) +
                             " failed: " + std::strerror(errno));
    }
    if (w == 0) {
      // pwrite returning 0 for a nonzero count should not happen on a
      // regular file; treat it as a hard error rather than spinning.
      return Status::IoError("write of page " + std::to_string(id) +
                             " made no progress at byte " +
                             std::to_string(done));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Pager::WritePageToFile(const Page& page) {
  GlobalMetrics().page_writes->Increment();
  {
    MutexLock lock(&io_mu_);
    if (simulate_write_failures_) {
      return Status::IoError("injected write failure for page " +
                             std::to_string(page.id));
    }
  }
  return WriteFullAt(
      page.data, kPageSize,
      static_cast<off_t>(page.id) * static_cast<off_t>(kPageSize), page.id);
}

void Pager::Pin(Shard& shard, Entry* entry) {
  if (entry->in_lru) {
    shard.lru.erase(entry->lru_it);
    entry->in_lru = false;
  }
  ++entry->pins;
}

void Pager::Unpin(Page* page) {
  Shard& shard = ShardFor(page->id);
  MutexLock lock(&shard.mu);
  auto it = shard.cache.find(page->id);
  XR_CHECK(it != shard.cache.end()) << "unpin of uncached page " << page->id;
  Entry& entry = it->second;
  XR_CHECK(entry.pins > 0) << "unbalanced unpin of page " << page->id;
  if (--entry.pins == 0) {
    shard.lru.push_front(page->id);
    entry.lru_it = shard.lru.begin();
    entry.in_lru = true;
    MaybeEvictShard(shard);
  }
}

void Pager::MaybeEvictShard(Shard& shard) {
  if (shard_capacity_ == 0) return;
  while (shard.cache.size() > shard_capacity_ && !shard.lru.empty()) {
    PageId victim = shard.lru.back();
    shard.lru.pop_back();
    auto it = shard.cache.find(victim);
    XR_CHECK(it != shard.cache.end());
    XR_CHECK(it->second.pins == 0);
    if (it->second.page->dirty) {
      Status st = WritePageToFile(*it->second.page);
      if (!st.ok()) {
        // Keep the page cached rather than lose data, and make the failure
        // sticky: the caller that dirtied this page has already dropped its
        // guard and believes the write will happen, so a later Flush() (or
        // status()) must report it rather than claim success.
        XR_LOG(Error) << "eviction write-back failed: " << st;
        writeback_failures_.fetch_add(1, std::memory_order_relaxed);
        GlobalMetrics().writeback_failures->Increment();
        {
          MutexLock io_lock(&io_mu_);
          if (io_error_.ok()) io_error_ = st;
        }
        shard.lru.push_back(victim);
        it->second.lru_it = std::prev(shard.lru.end());
        it->second.in_lru = true;
        return;
      }
    }
    shard.cache.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    GlobalMetrics().evictions->Increment();
  }
}

PageGuard Pager::NewPage() {
  PageId id = next_page_id_.fetch_add(1, std::memory_order_acq_rel);
  auto page = std::make_unique<Page>();
  page->id = id;
  page->dirty = true;
  Shard& shard = ShardFor(id);
  MutexLock lock(&shard.mu);
  Entry entry;
  entry.page = std::move(page);
  Entry* inserted = &shard.cache.emplace(id, std::move(entry)).first->second;
  Pin(shard, inserted);
  MaybeEvictShard(shard);
  return PageGuard(this, inserted->page.get());
}

PageGuard Pager::Fetch(PageId id) {
  metrics::ScopedTimer fetch_timer(GlobalMetrics().fetch_us);
  if (id >= next_page_id_.load(std::memory_order_acquire)) return PageGuard();
  Shard& shard = ShardFor(id);

  std::shared_ptr<InFlight> inflight;
  bool leader = false;
  {
    Timer latch_timer;
    MutexLock lock(&shard.mu);
    GlobalMetrics().latch_wait_us->Record(
        static_cast<uint64_t>(latch_timer.ElapsedMicros()));
    auto it = shard.cache.find(id);
    if (it != shard.cache.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      GlobalMetrics().cache_hits->Increment();
      Pin(shard, &it->second);
      return PageGuard(this, it->second.page.get());
    }
    // Miss: the page must live in the file (evicted or pre-existing).
    // Waiters on an in-progress load count as misses too, preserving the
    // "every fetch is a hit or a miss" accounting invariant.
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    GlobalMetrics().cache_misses->Increment();
    if (in_memory()) return PageGuard();  // cannot happen without eviction
    auto load_it = shard.loading.find(id);
    if (load_it != shard.loading.end()) {
      inflight = load_it->second;
      ++inflight->waiters;
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
      GlobalMetrics().single_flight_waits->Increment();
    } else {
      inflight = std::make_shared<InFlight>();
      shard.loading.emplace(id, inflight);
      leader = true;
    }
  }

  if (leader) {
    // Load with no latch held: readers of other pages in this shard
    // proceed, and threads missing this same page queue on `inflight`.
    auto page = std::make_unique<Page>();
    page_reads_.fetch_add(1, std::memory_order_relaxed);
    GlobalMetrics().page_reads->Increment();
    Status st = ReadPageFromFile(id, page.get());
    Page* published = nullptr;
    {
      MutexLock lock(&shard.mu);
      shard.loading.erase(id);
      // No waiter can register past this point; inflight->waiters is final.
      if (st.ok()) {
        Entry entry;
        entry.page = std::move(page);
        // Pre-pin for the leader and every waiter so the page cannot be
        // evicted between publication and the waiters waking up; each
        // PageGuard (including theirs) releases exactly one pin.
        entry.pins = 1 + inflight->waiters;
        published =
            shard.cache.emplace(id, std::move(entry)).first->second.page.get();
        MaybeEvictShard(shard);
      }
    }
    {
      std::lock_guard<std::mutex> publish(inflight->mu);
      inflight->done = true;
      inflight->status = st;
      inflight->page = published;
    }
    inflight->cv.notify_all();
    if (!st.ok()) {
      XR_LOG(Error) << "page read failed: " << st;
      return PageGuard();
    }
    return PageGuard(this, published);
  }

  // Waiter: block until the leader publishes the page or its error.
  std::unique_lock<std::mutex> wait_lock(inflight->mu);
  inflight->cv.wait(wait_lock, [&] { return inflight->done; });
  if (inflight->page == nullptr) return PageGuard();  // leader's read failed
  return PageGuard(this, inflight->page);  // pin pre-counted by the leader
}

Status Pager::Flush() {
  {
    // A failed eviction write-back means pages this pager promised to
    // persist may not be in the file; report that before (and instead of)
    // claiming a clean flush.
    MutexLock lock(&io_mu_);
    if (!io_error_.ok()) return io_error_;
  }
  if (in_memory()) return Status::OK();
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (auto& [id, entry] : shard.cache) {
      if (!entry.page->dirty) continue;
      Status st = WritePageToFile(*entry.page);
      if (!st.ok()) {
        MutexLock io_lock(&io_mu_);
        if (io_error_.ok()) io_error_ = st;
        return st;
      }
      entry.page->dirty = false;
    }
  }
  return Status::OK();
}

size_t Pager::cached_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total += shard.cache.size();
  }
  return total;
}

}  // namespace xrefine::storage
