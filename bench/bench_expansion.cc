// Future-work extension (paper Section IX): refining queries with too many
// matching results. For a set of deliberately broad queries, reports the
// original meaningful-result count and the narrowing expansions proposed by
// the statistics-driven expander, with timing.
#include "bench/bench_util.h"
#include "core/expansion.h"

namespace xrefine::bench {
namespace {

void Main() {
  PrintHeader("Extension: over-broad query refinement (query expansion)");
  Env env = MakeDblpEnv(1200);
  std::printf("corpus: %zu nodes\n", env.doc->NodeCount());

  const std::vector<core::Query> broad_queries = {
      {"database"},
      {"query"},
      {"xml"},
      {"data", "system"},
      {"query", "processing"},
      {"search"},
      {"learning"},
      {"database", "query"},
  };

  core::ExpansionOptions options;
  options.broad_threshold = 30;
  options.top_k = 3;

  std::printf("%-26s %8s %10s  %s\n", "query", "results", "time(ms)",
              "proposed expansions (narrowed result count)");
  for (const auto& q : broad_queries) {
    core::ExpansionOutcome outcome;
    double ms = TimeMs(
        [&] { outcome = core::ExpandQuery(*env.corpus, q, options); });
    std::string expansions;
    for (const auto& ex : outcome.expansions) {
      if (!expansions.empty()) expansions += ", ";
      expansions += "+" + ex.added_term + " (" +
                    std::to_string(ex.result_count) + ")";
    }
    if (!outcome.is_broad) expansions = "(not broad)";
    std::printf("%-26s %8zu %10.3f  %s\n",
                core::QueryToString(q).c_str(),
                outcome.original_result_count, ms, expansions.c_str());
  }

  std::printf(
      "\nnote: every proposed expansion keeps a non-empty result set while\n"
      "strictly narrowing the original one.\n");
}

}  // namespace
}  // namespace xrefine::bench

int main() {
  xrefine::bench::Main();
  return 0;
}
