#include "slca/stack_slca.h"

#include <algorithm>

#include "common/logging.h"

namespace xrefine::slca {

namespace {

struct Entry {
  uint32_t component;
  uint64_t mask = 0;
  bool slca_below = false;
  xml::TypeId witness = xml::kInvalidTypeId;
};

// Document-order merge over the posting spans.
class MergedStream {
 public:
  explicit MergedStream(const std::vector<PostingSpan>& lists)
      : lists_(lists), cursors_(lists.size(), 0) {}

  // Returns the list index of the smallest head (advancing its cursor and
  // storing the popped posting's index in *pos), or -1 when exhausted.
  int Pop(size_t* pos) {
    int best = -1;
    for (size_t i = 0; i < lists_.size(); ++i) {
      if (cursors_[i] >= lists_[i].size) continue;
      if (best < 0 ||
          lists_[i].label(cursors_[i]) <
              lists_[static_cast<size_t>(best)].label(
                  cursors_[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return -1;
    *pos = cursors_[static_cast<size_t>(best)]++;
    return best;
  }

 private:
  const std::vector<PostingSpan>& lists_;
  std::vector<size_t> cursors_;
};

}  // namespace

std::vector<SlcaResult> StackSlca(const std::vector<PostingSpan>& lists,
                                  const xml::NodeTypeTable& types) {
  if (lists.empty() || lists.size() > kMaxStackKeywords) return {};
  for (const auto& span : lists) {
    if (span.empty()) return {};
  }
  const uint64_t full_mask = (lists.size() == 64)
                                 ? ~uint64_t{0}
                                 : ((uint64_t{1} << lists.size()) - 1);

  std::vector<Entry> stack;
  std::vector<SlcaResult> results;

  // Pops the top entry, possibly emitting it, and folds its state into the
  // new top.
  auto pop = [&]() {
    Entry e = stack.back();
    stack.pop_back();
    if (e.mask == full_mask && !e.slca_below) {
      std::vector<uint32_t> components;
      components.reserve(stack.size() + 1);
      for (const Entry& se : stack) components.push_back(se.component);
      components.push_back(e.component);
      size_t depth = components.size();
      results.push_back(
          SlcaResult{xml::Dewey(std::move(components)),
                     AncestorTypeAtDepth(types, e.witness, depth)});
      e.slca_below = true;
    }
    if (!stack.empty()) {
      Entry& parent = stack.back();
      parent.mask |= e.mask;
      parent.slca_below |= e.slca_below;
      if (parent.witness == xml::kInvalidTypeId) parent.witness = e.witness;
    }
  };

  MergedStream stream(lists);
  uint64_t scanned = 0;
  size_t pos = 0;
  int list_index;
  while ((list_index = stream.Pop(&pos)) >= 0) {
    ++scanned;
    const xml::DeweyRef label = lists[static_cast<size_t>(list_index)].label(pos);
    // A depth-0 (root) label has no stack entry to mark: the eager
    // algorithms drop those anchors too ("no common ancestor below
    // nothing"), so skipping keeps all three algorithms in agreement —
    // indexing stack.back() here would be UB on an empty stack.
    if (label.empty()) continue;
    // Longest common prefix with the current stack path.
    size_t p = 0;
    while (p < stack.size() && p < label.depth() &&
           stack[p].component == label[p]) {
      ++p;
    }
    while (stack.size() > p) pop();
    for (size_t i = p; i < label.depth(); ++i) {
      stack.push_back(Entry{label[i]});
    }
    XR_DCHECK(!stack.empty());
    stack.back().mask |= uint64_t{1} << list_index;
    if (stack.back().witness == xml::kInvalidTypeId) {
      stack.back().witness = lists[static_cast<size_t>(list_index)].type(pos);
    }
  }
  while (!stack.empty()) pop();
  internal::Metrics().elements_scanned->Increment(scanned);

  std::sort(results.begin(), results.end(),
            [](const SlcaResult& a, const SlcaResult& b) {
              return a.dewey < b.dewey;
            });
  return results;
}

}  // namespace xrefine::slca
