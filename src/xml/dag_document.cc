#include "xml/dag_document.h"

#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace xrefine::xml {

namespace {

struct DagMetrics {
  metrics::Gauge* nodes;            // logical tree nodes of the last build
  metrics::Gauge* dag_nodes;        // distinct DAG nodes
  metrics::Gauge* shared_subtrees;  // DAG nodes with >1 instance
  metrics::Gauge* bytes;            // compressed resident bytes
};

const DagMetrics& Metrics() {
  static const DagMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return DagMetrics{r.gauge("xml.dag_tree_nodes"), r.gauge("xml.dag_nodes"),
                      r.gauge("xml.dag_shared_subtrees"),
                      r.gauge("xml.dag_bytes")};
  }();
  return m;
}

// 64-bit mixing (splitmix64 finalizer); used for content hashing only —
// equality is always decided by comparing the actual payloads.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashBytes(std::string_view s, uint64_t seed) {
  uint64_t h = seed;
  for (char c : s) h = Mix(h ^ static_cast<uint8_t>(c));
  return h;
}

}  // namespace

DagNodeId DagDocument::FindByDewey(const Dewey& dewey) const {
  if (!has_root() || dewey.empty() || dewey[0] != 0) return kInvalidDagNodeId;
  DagNodeId cur = root_;
  for (size_t i = 1; i < dewey.depth(); ++i) {
    uint32_t ord = dewey[i];
    if (ord >= child_count(cur)) return kInvalidDagNodeId;
    cur = child(cur, ord);
  }
  return cur;
}

std::string DagDocument::SubtreeText(DagNodeId id) const {
  std::string out;
  // Iterative preorder, children reversed onto the stack so the leftmost
  // is processed first — the exact visit order of Document::SubtreeText.
  std::vector<DagNodeId> stack = {id};
  while (!stack.empty()) {
    DagNodeId cur = stack.back();
    stack.pop_back();
    std::string_view t = text(cur);
    if (!t.empty()) {
      if (!out.empty()) out += ' ';
      out += t;
    }
    size_t n = child_count(cur);
    for (size_t i = n; i > 0; --i) stack.push_back(child(cur, i - 1));
  }
  return out;
}

std::string DagDocument::Describe(const Dewey& dewey) const {
  DagNodeId id = FindByDewey(dewey);
  if (id == kInvalidDagNodeId) return "?:" + dewey.ToString();
  return tag(id) + ":" + dewey.ToString();
}

size_t DagDocument::ResidentBytes() const {
  return sizeof(DagDocument) + nodes_.capacity() * sizeof(Node) +
         child_pool_.capacity() * sizeof(DagNodeId) + text_pool_.capacity() +
         instance_counts_.capacity() * sizeof(uint64_t);
}

bool DagDocument::VisitSubtree(
    const Dewey& dewey,
    const std::function<void(std::string_view, std::string_view)>& fn) const {
  DagNodeId start = FindByDewey(dewey);
  if (start == kInvalidDagNodeId) return false;
  std::vector<DagNodeId> stack = {start};
  while (!stack.empty()) {
    DagNodeId cur = stack.back();
    stack.pop_back();
    fn(tag(cur), text(cur));
    size_t n = child_count(cur);
    for (size_t i = n; i > 0; --i) stack.push_back(child(cur, i - 1));
  }
  return true;
}

std::string DagDocument::SubtreeTextAt(const Dewey& dewey) const {
  DagNodeId id = FindByDewey(dewey);
  return id == kInvalidDagNodeId ? std::string() : SubtreeText(id);
}

uint64_t DagDocument::SubtreeFingerprint(const Dewey& dewey) const {
  DagNodeId id = FindByDewey(dewey);
  return id == kInvalidDagNodeId ? 0 : static_cast<uint64_t>(id) + 1;
}

// --- DagBuilder ---

size_t DagBuilder::NodeContentHash::operator()(DagNodeId id) const {
  uint64_t h = Mix(doc->type(id));
  h = HashBytes(doc->text(id), h);
  size_t n = doc->child_count(id);
  h = Mix(h ^ n);
  for (size_t i = 0; i < n; ++i) h = Mix(h ^ doc->child(id, i));
  return static_cast<size_t>(h);
}

bool DagBuilder::NodeContentEq::operator()(DagNodeId a, DagNodeId b) const {
  if (doc->type(a) != doc->type(b)) return false;
  if (doc->text(a) != doc->text(b)) return false;
  size_t n = doc->child_count(a);
  if (n != doc->child_count(b)) return false;
  for (size_t i = 0; i < n; ++i) {
    if (doc->child(a, i) != doc->child(b, i)) return false;
  }
  return true;
}

DagBuilder::NodeRef DagBuilder::CreateRoot(std::string_view tag) {
  XR_CHECK(path_.empty() && doc_.nodes_.empty() && !finalized_)
      << "root already exists";
  OpenNode n;
  n.type = doc_.types_.Intern(kInvalidTypeId, tag);
  n.serial = next_serial_++;
  path_.push_back(std::move(n));
  return NodeRef{0, path_.back().serial};
}

DagBuilder::OpenNode& DagBuilder::CheckedOpen(NodeRef ref) {
  XR_CHECK(ref.depth < path_.size() &&
           path_[ref.depth].serial == ref.serial)
      << "DagBuilder: handle refers to a sealed node (preorder building "
         "discipline violated)";
  return path_[ref.depth];
}

DagBuilder::NodeRef DagBuilder::AddChild(NodeRef parent, std::string_view tag) {
  TypeId parent_type = CheckedOpen(parent).type;
  // The new child supersedes everything deeper on the rightmost path:
  // those subtrees are complete, so cons them into the DAG.
  while (path_.size() > static_cast<size_t>(parent.depth) + 1) SealDeepest();
  OpenNode n;
  n.type = doc_.types_.Intern(parent_type, tag);
  n.serial = next_serial_++;
  path_.push_back(std::move(n));
  return NodeRef{parent.depth + 1, path_.back().serial};
}

void DagBuilder::AppendText(NodeRef node, std::string_view text) {
  std::string& t = CheckedOpen(node).text;
  if (!t.empty() && !text.empty()) t += ' ';
  t.append(text);
}

DagNodeId DagBuilder::Intern(OpenNode&& node) {
  // Provisionally append the node's payload to the pools, then consult the
  // content-addressed set. On a duplicate the appends are rolled back
  // (they are all tail appends) and the canonical id reused.
  size_t text_mark = doc_.text_pool_.size();
  size_t child_mark = doc_.child_pool_.size();
  XR_CHECK(text_mark + node.text.size() <=
               std::numeric_limits<uint32_t>::max() &&
           child_mark + node.children.size() <=
               std::numeric_limits<uint32_t>::max())
      << "DagBuilder: distinct content exceeds 4G pool addressing";

  DagDocument::Node entry;
  entry.type = node.type;
  entry.text_offset = static_cast<uint32_t>(text_mark);
  entry.text_len = static_cast<uint32_t>(node.text.size());
  entry.child_offset = static_cast<uint32_t>(child_mark);
  entry.child_count = static_cast<uint32_t>(node.children.size());
  entry.subtree_nodes = 1;
  for (DagNodeId c : node.children) {
    entry.subtree_nodes += doc_.nodes_[c].subtree_nodes;
  }
  doc_.text_pool_.append(node.text);
  doc_.child_pool_.insert(doc_.child_pool_.end(), node.children.begin(),
                          node.children.end());
  doc_.nodes_.push_back(entry);

  DagNodeId id = static_cast<DagNodeId>(doc_.nodes_.size() - 1);
  auto [it, inserted] = interned_.insert(id);
  if (!inserted) {
    doc_.nodes_.pop_back();
    doc_.text_pool_.resize(text_mark);
    doc_.child_pool_.resize(child_mark);
    return *it;
  }
  return id;
}

void DagBuilder::SealDeepest() {
  XR_CHECK(!path_.empty());
  OpenNode node = std::move(path_.back());
  path_.pop_back();
  DagNodeId id = Intern(std::move(node));
  if (path_.empty()) {
    doc_.root_ = id;
  } else {
    path_.back().children.push_back(id);
  }
}

DagDocument DagBuilder::Finalize() {
  XR_CHECK(!finalized_) << "Finalize called twice";
  finalized_ = true;
  while (!path_.empty()) SealDeepest();
  interned_.clear();

  // Instance counts, top-down. Children are always consed before their
  // parents, so every node's id exceeds its children's and one descending
  // sweep from the root propagates counts in topological order.
  doc_.instance_counts_.assign(doc_.nodes_.size(), 0);
  doc_.shared_subtrees_ = 0;
  if (doc_.root_ != kInvalidDagNodeId) {
    doc_.instance_counts_[doc_.root_] = 1;
    for (DagNodeId id = doc_.root_ + 1; id-- > 0;) {
      uint64_t inst = doc_.instance_counts_[id];
      if (inst == 0) continue;
      if (inst > 1) ++doc_.shared_subtrees_;
      for (size_t i = 0; i < doc_.child_count(id); ++i) {
        doc_.instance_counts_[doc_.child(id, i)] += inst;
      }
    }
  }

  doc_.nodes_.shrink_to_fit();
  doc_.child_pool_.shrink_to_fit();
  doc_.text_pool_.shrink_to_fit();
  doc_.instance_counts_.shrink_to_fit();

  Metrics().nodes->Set(static_cast<int64_t>(doc_.LogicalNodeCount()));
  Metrics().dag_nodes->Set(static_cast<int64_t>(doc_.DagNodeCount()));
  Metrics().shared_subtrees->Set(
      static_cast<int64_t>(doc_.SharedSubtreeCount()));
  Metrics().bytes->Set(static_cast<int64_t>(doc_.ResidentBytes()));
  return std::move(doc_);
}

DagDocument CompressDocument(const Document& doc) {
  DagBuilder builder;
  if (!doc.has_root()) return builder.Finalize();

  // Preorder replay. When a node is visited its parent is on the builder's
  // open path by construction, so every AddChild hits a live handle.
  struct Pending {
    NodeId id;
    DagBuilder::NodeRef parent;
  };
  std::vector<Pending> stack;
  auto visit = [&](NodeId id, DagBuilder::NodeRef ref) {
    if (!doc.text(id).empty()) builder.AppendText(ref, doc.text(id));
    const auto& kids = doc.children(id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Pending{*it, ref});
    }
  };
  visit(doc.root(), builder.CreateRoot(doc.tag(doc.root())));
  while (!stack.empty()) {
    Pending p = stack.back();
    stack.pop_back();
    visit(p.id, builder.AddChild(p.parent, doc.tag(p.id)));
  }
  return builder.Finalize();
}

}  // namespace xrefine::xml
