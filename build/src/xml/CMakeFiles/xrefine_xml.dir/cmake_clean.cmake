file(REMOVE_RECURSE
  "CMakeFiles/xrefine_xml.dir/dewey.cc.o"
  "CMakeFiles/xrefine_xml.dir/dewey.cc.o.d"
  "CMakeFiles/xrefine_xml.dir/document.cc.o"
  "CMakeFiles/xrefine_xml.dir/document.cc.o.d"
  "CMakeFiles/xrefine_xml.dir/node_type.cc.o"
  "CMakeFiles/xrefine_xml.dir/node_type.cc.o.d"
  "CMakeFiles/xrefine_xml.dir/xml_parser.cc.o"
  "CMakeFiles/xrefine_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/xrefine_xml.dir/xml_writer.cc.o"
  "CMakeFiles/xrefine_xml.dir/xml_writer.cc.o.d"
  "libxrefine_xml.a"
  "libxrefine_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrefine_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
