// Umbrella header: the public API a downstream user needs to embed XRefine.
//
//   #include "xrefine.h"
//
//   auto doc     = xrefine::xml::ParseXmlFile("data.xml").value();
//   auto corpus  = xrefine::index::BuildIndex(doc);
//   auto lexicon = xrefine::text::Lexicon::BuiltIn();
//   xrefine::core::XRefine engine(corpus.get(), &lexicon, {});
//   auto outcome = engine.RunText("databse publication");
//
// Individual headers remain includable for finer-grained dependencies.
#ifndef XREFINE_XREFINE_H_
#define XREFINE_XREFINE_H_

#include "core/expansion.h"        // over-broad query refinement
#include "core/query_log.h"        // log-mined refinement rules
#include "core/result_ranking.h"   // XML TF*IDF over one RQ's results
#include "core/xrefine.h"          // the engine facade
#include "index/index_builder.h"   // BuildIndex / IndexedCorpus
#include "index/index_store.h"     // Save/LoadCorpus (on-disk B+-tree)
#include "slca/slca.h"             // standalone SLCA computation
#include "storage/kvstore.h"       // the persistent store
#include "text/lexicon.h"          // synonym/acronym lexicon
#include "xml/xml_parser.h"        // ParseXml / ParseXmlFile
#include "xml/xml_writer.h"        // WriteXml / WriteXmlFile

#endif  // XREFINE_XREFINE_H_
