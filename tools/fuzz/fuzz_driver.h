// Shared scaffolding for the fuzz harnesses (tools/fuzz/fuzz_*.cc).
//
// Every harness implements the libFuzzer entry point and nothing else:
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// Built with -DXREFINE_FUZZ=ON under Clang, each harness links libFuzzer
// (-fsanitize=fuzzer,address) and fuzzes for real. In every other build the
// same translation unit links fuzz_driver.cc instead, whose main() replays
// the checked-in corpus under tests/fuzz_corpora/<harness>/ plus a
// deterministic seeded mutation loop — so each harness doubles as a ctest
// regression runner on compilers without libFuzzer.
#ifndef XREFINE_TOOLS_FUZZ_FUZZ_DRIVER_H_
#define XREFINE_TOOLS_FUZZ_FUZZ_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace xrefine::fuzz {

/// Sequential consumer over the fuzz input: harnesses that need structured
/// choices (probe counts, mode switches, split points) draw them from the
/// front of the input so the fuzzer can learn the structure byte by byte.
/// Exhausted input yields zeros, never a read past the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  uint8_t U8() { return pos_ < size_ ? data_[pos_++] : 0; }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | U8();
    return v;
  }

  /// At most `max_len` bytes from the front, as a string view.
  std::string_view Bytes(size_t max_len) {
    size_t n = max_len < remaining() ? max_len : remaining();
    std::string_view out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  /// Everything not yet consumed.
  std::string_view Rest() { return Bytes(remaining()); }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace xrefine::fuzz

#endif  // XREFINE_TOOLS_FUZZ_FUZZ_DRIVER_H_
