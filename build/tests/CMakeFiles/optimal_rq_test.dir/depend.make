# Empty dependencies file for optimal_rq_test.
# This may be replaced when dependencies are built.
