// Concurrent read-path throughput: one shared corpus and engine, N threads
// refining queries simultaneously. The engine's query path is read-only
// except the co-occurrence memoisation, which is mutex-guarded; this bench
// demonstrates scaling and doubles as a race smoke test (build with
// -DXREFINE_SANITIZE=thread to run it under TSan).
//
// The corpus is round-tripped through the persistent store (save, then load
// from a file-backed KVStore with a bounded buffer pool) before serving, so
// one run exercises the pager, B+-tree, and index-store counters alongside
// the slca.* / query.* ones. The registry is dumped to
// BENCH_parallel_queries.json at exit.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "index/index_store.h"
#include "storage/kvstore.h"

namespace xrefine::bench {
namespace {

// Minimal stand-in for benchmark::DoNotOptimize without the library dep.
template <typename T>
void benchmark_do_not_optimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Saves env's corpus to a file-backed store and loads it back through a
// bounded buffer pool (forcing evictions and re-reads), mirroring how a
// serving process would boot from a persisted index. Returns the loaded
// corpus, or null (with a message) when any storage step fails.
std::unique_ptr<index::IndexedCorpus> RoundTripThroughStore(const Env& env,
                                                            size_t max_pages) {
  std::string path = "bench_parallel_queries.xrdb";
  std::remove(path.c_str());
  {
    auto store_or = storage::KVStore::Open(path);
    if (!store_or.ok()) {
      std::printf("store open failed: %s\n",
                  store_or.status().ToString().c_str());
      return nullptr;
    }
    Status st = index::SaveCorpus(*env.corpus, store_or.value().get());
    if (!st.ok()) {
      std::printf("save failed: %s\n", st.ToString().c_str());
      return nullptr;
    }
  }
  storage::PagerOptions pager_options;
  pager_options.max_cached_pages = max_pages;
  auto store_or = storage::KVStore::Open(path, pager_options);
  if (!store_or.ok()) {
    std::printf("store reopen failed: %s\n",
                store_or.status().ToString().c_str());
    return nullptr;
  }
  auto corpus_or = index::LoadCorpus(*store_or.value());
  std::remove(path.c_str());
  if (!corpus_or.ok()) {
    std::printf("load failed: %s\n", corpus_or.status().ToString().c_str());
    return nullptr;
  }
  return std::move(corpus_or).value();
}

void Main() {
  PrintHeader("Parallel query throughput (queries/second)");
  Env env = MakeDblpEnv(800);
  auto pool = MakePool(env, 30, "inproceedings", 888);
  std::printf("corpus: %zu nodes; %zu distinct queries, 3 rounds each\n",
              env.doc->NodeCount(), pool.size());

  // Serve from a corpus loaded off disk through a small buffer pool, the
  // production boot path; fall back to the in-memory build if storage fails.
  std::unique_ptr<index::IndexedCorpus> loaded =
      RoundTripThroughStore(env, /*max_pages=*/64);
  const index::IndexedCorpus* corpus =
      loaded != nullptr ? loaded.get() : env.corpus.get();
  std::printf("serving from %s corpus\n",
              loaded != nullptr ? "store-loaded" : "in-memory");

  core::XRefineOptions options;
  options.top_k = 3;
  core::XRefine engine(corpus, &env.lexicon, options);

  // Warm the caches once.
  for (const auto& cq : pool) engine.Run(cq.corrupted);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::atomic<size_t> next{0};
    const size_t total = pool.size() * 3;
    Timer t;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        while (true) {
          size_t i = next.fetch_add(1);
          if (i >= total) break;
          auto outcome = engine.Run(pool[i % pool.size()].corrupted);
          benchmark_do_not_optimize(outcome.refined.size());
        }
      });
    }
    for (auto& w : workers) w.join();
    double seconds = t.ElapsedSeconds();
    std::printf("%2u threads: %8.0f q/s  (%.3f ms/query)\n", threads,
                static_cast<double>(total) / seconds,
                1e3 * seconds / static_cast<double>(total));
  }

  std::ofstream out("BENCH_parallel_queries.json");
  out << metrics::Registry::Global().DumpJson();
  std::printf("metrics written to BENCH_parallel_queries.json\n");
}

}  // namespace
}  // namespace xrefine::bench

int main() {
  xrefine::bench::Main();
  return 0;
}
