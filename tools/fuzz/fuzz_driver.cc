// Regression-runner main() for the fuzz harnesses: links against any one
// harness's LLVMFuzzerTestOneInput and (a) replays every file under the
// corpus paths given on the command line, then (b) runs a deterministic
// seeded mutation loop over those seeds. Crashes abort the process, which
// ctest reports as a failure — so every crasher checked into
// tests/fuzz_corpora/ stays fixed, on every compiler, without libFuzzer.
//
// Usage: fuzz_<name>_regress [--mutations N] [--seed S] [--last-input FILE]
//                            <corpus dir|file>...
//
// Every input (seed or mutant) is written to the last-input file (default:
// <program>.last_input in the working directory) just before execution and
// the file is removed on a clean run — so when a harness aborts, the exact
// crashing bytes are sitting on disk, ready to be replayed as a single-file
// corpus argument, minimized by hand, and committed as crash-<description>.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "tools/fuzz/fuzz_driver.h"

namespace {

namespace fs = std::filesystem;

// xorshift64*: deterministic across platforms, no <random> distribution
// variance, seedable from the command line for replaying a failing loop.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  // Unbiased enough for fuzzing purposes; bound > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }
};

bool ReadFileBytes(const fs::path& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

// Persists `data` so that if the harness aborts on this input, the bytes
// survive the crash. Overwritten per execution; cheap relative to a decode.
void WriteLastInput(const fs::path& path, const std::vector<uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// One structural mutation in place. The menu mirrors libFuzzer's basic
// mutators: bit flip, byte set, truncate, erase, duplicate span, insert.
void Mutate(Rng& rng, std::vector<uint8_t>& data) {
  constexpr size_t kMaxSize = 1 << 16;
  if (data.empty()) {
    data.push_back(static_cast<uint8_t>(rng.Next()));
    return;
  }
  switch (rng.Below(6)) {
    case 0:  // flip one bit
      data[rng.Below(data.size())] ^= static_cast<uint8_t>(1u << rng.Below(8));
      break;
    case 1:  // overwrite one byte
      data[rng.Below(data.size())] = static_cast<uint8_t>(rng.Next());
      break;
    case 2:  // truncate
      data.resize(rng.Below(data.size()) + 1);
      break;
    case 3: {  // erase a span
      size_t begin = rng.Below(data.size());
      size_t len = rng.Below(data.size() - begin) + 1;
      data.erase(data.begin() + begin, data.begin() + begin + len);
      break;
    }
    case 4: {  // duplicate a span to the end
      if (data.size() >= kMaxSize) break;
      size_t begin = rng.Below(data.size());
      size_t len = rng.Below(data.size() - begin) + 1;
      if (len > kMaxSize - data.size()) len = kMaxSize - data.size();
      data.insert(data.end(), data.begin() + begin, data.begin() + begin + len);
      break;
    }
    default: {  // insert a random byte
      if (data.size() >= kMaxSize) break;
      data.insert(data.begin() + rng.Below(data.size() + 1),
                  static_cast<uint8_t>(rng.Next()));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t mutations = 256;
  uint64_t seed = 0x5852464E;  // "XRFN"
  fs::path last_input =
      fs::path(argv[0]).filename().concat(".last_input");
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutations") == 0 && i + 1 < argc) {
      mutations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--last-input") == 0 && i + 1 < argc) {
      last_input = argv[++i];
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutations N] [--seed S] <corpus dir|file>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::directory_iterator(input, ec)) {
        if (entry.is_regular_file() &&
            entry.path().filename().string() != "README.md") {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", input.c_str());
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "corpus is empty; nothing to replay\n");
    return 2;
  }
  std::sort(files.begin(), files.end());  // deterministic replay order

  uint64_t executions = 0;
  std::vector<uint8_t> empty;
  WriteLastInput(last_input, empty);
  LLVMFuzzerTestOneInput(empty.data(), 0);  // the degenerate input, always
  ++executions;

  for (const fs::path& file : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFileBytes(file, &bytes)) {
      std::fprintf(stderr, "failed to read %s\n", file.c_str());
      return 2;
    }
    std::fprintf(stderr, "replay %s (%zu bytes)\n", file.c_str(),
                 bytes.size());
    WriteLastInput(last_input, bytes);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++executions;

    // Seeded mutation loop: each round re-starts from the pristine seed and
    // applies a small burst of stacked mutations, so early truncations
    // don't starve later rounds of the seed's structure.
    Rng rng{seed ^ std::hash<std::string>{}(file.filename().string())};
    for (uint64_t m = 0; m < mutations; ++m) {
      std::vector<uint8_t> mutated = bytes;
      uint64_t burst = rng.Below(4) + 1;
      for (uint64_t b = 0; b < burst; ++b) Mutate(rng, mutated);
      WriteLastInput(last_input, mutated);
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
      ++executions;
    }
  }

  std::error_code ec;
  fs::remove(last_input, ec);  // a surviving file marks the crashing input
  std::fprintf(stderr,
               "fuzz regression: %" PRIu64 " executions over %zu seeds "
               "(%" PRIu64 " mutations each, seed %" PRIu64 ")\n",
               executions, files.size(), mutations, seed);
  return 0;
}
