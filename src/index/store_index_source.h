// StoreBackedIndexSource: serves queries straight out of the persistent KV
// store, fetching each keyword's inverted list on demand — the paper's own
// serving model, where a keyword lookup is a Berkeley DB B-tree get
// (Section VII). Opening a source loads only the small metadata (node
// types, statistics, co-occurrence cache) plus a per-keyword size map;
// posting lists are decoded lazily and kept in a bounded LRU cache with
// TinyLFU admission (frequency-sketch-gated eviction, tinylfu.h), so the
// resident set is the cache budget + the pager's buffer pool, independent
// of corpus size, and a one-pass cold scan cannot flush the hot set.
#ifndef XREFINE_INDEX_STORE_INDEX_SOURCE_H_
#define XREFINE_INDEX_STORE_INDEX_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "index/bloom.h"
#include "index/cooccurrence.h"
#include "index/index_source.h"
#include "index/statistics.h"
#include "index/tinylfu.h"
#include "storage/kvstore.h"
#include "xml/node_type.h"

namespace xrefine::index {

struct StoreIndexSourceOptions {
  /// Budget for decoded posting lists kept hot, in (approximate) resident
  /// bytes. Eviction is LRU and never blocks readers: evicted lists stay
  /// alive for as long as any handed-out PostingListHandle pins them.
  /// 0 = unbounded.
  size_t cache_capacity_bytes = 16u << 20;
  /// TinyLFU admission: on eviction pressure a cold candidate only
  /// displaces victims whose sketch frequency is strictly lower, so a
  /// one-pass cold scan cannot flush the hot working set. Off = plain LRU
  /// (every miss is admitted), the pre-admission behavior.
  bool cache_admission = true;
  /// Sketch sizing for the admission filter (ignored when admission is
  /// off).
  TinyLfuOptions admission;
  /// W-TinyLFU recency window (Einziger et al.): this fraction of the byte
  /// budget forms a windowed-LRU stage in FRONT of the admission duel. New
  /// lists always enter the window (recency-biased bursts stop paying the
  /// sketch duel on first touch); entries squeezed out of the window duel
  /// into the main TinyLFU-guarded segment, and only lose their slot when
  /// a needed main victim is estimated at least as hot. 0 (default) = no
  /// window, the plain-TinyLFU behavior every existing test pins down.
  /// Only meaningful with cache_admission on and a nonzero capacity;
  /// clamped to [0, 1].
  double window_fraction = 0.0;
  /// Lazy vocabulary: skip the open-time O(vocabulary) record-head scan and
  /// serve keyword-existence probes from the persisted Bloom filter
  /// instead. A definite bloom miss (the common case for spelling-probe
  /// floods and absent query terms) answers without any B+-tree descent
  /// (counted as index.bloom_skips); a "maybe" descends to the record head
  /// and memoizes the size (index.bloom_hits). Stores persisted before the
  /// bloom record exists fall back to the eager scan transparently.
  bool lazy_vocabulary = false;
};

/// Thread-safe for concurrent readers. Lock order: the source's cache latch
/// is leaf-level on the hit path and is never held across a store fetch —
/// a miss reads the store (B-tree latch, then pager latch) unlocked and
/// re-acquires the cache latch only to insert, so cache latch and store
/// latches are never held together.
class StoreBackedIndexSource : public IndexSource {
 public:
  /// Boots a source over `store` (which must outlive it): loads metadata
  /// and scans the inverted-list keyspace for the vocabulary and per-list
  /// posting counts, reading only each record's first bytes.
  [[nodiscard]] static StatusOr<std::unique_ptr<StoreBackedIndexSource>> Open(
      const storage::KVStore* store, StoreIndexSourceOptions options = {});

  StoreBackedIndexSource(const StoreBackedIndexSource&) = delete;
  StoreBackedIndexSource& operator=(const StoreBackedIndexSource&) = delete;

  // --- IndexSource ---

  StatusOr<PostingListHandle> FetchList(
      std::string_view keyword) const override;
  /// Warms the posting-list cache for every not-yet-cached keyword, fetching
  /// up to four lists concurrently (each fetch misses into the store, where
  /// the B+-tree's shared latch and the pager's sharded pool let them
  /// proceed in parallel). Fetch errors are swallowed: the same error
  /// resurfaces from the caller's own FetchList.
  void Prefetch(const std::vector<std::string>& keywords) const override;
  bool Contains(std::string_view keyword) const override;
  size_t ListSize(std::string_view keyword) const override;
  size_t keyword_count() const override;
  void ForEachKeyword(
      const std::function<void(std::string_view)>& fn) const override;

  const StatisticsTable& stats() const override { return stats_; }
  const xml::NodeTypeTable& types() const override { return types_; }
  CooccurrenceTable& cooccurrence() const override { return cooccurrence_; }

  // --- cache introspection (tests, benches) ---

  size_t cached_lists() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return cache_.size();
  }
  size_t cached_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return cache_bytes_;
  }
  /// Whether `keyword`'s list is resident right now (tests assert the hot
  /// working set survives a cold scan under admission).
  bool IsCachedForTesting(std::string_view keyword) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return cache_.find(std::string(keyword)) != cache_.end();
  }
  /// Lists currently in the W-TinyLFU recency window (0 with no window).
  size_t window_lists() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return window_lru_.size();
  }

 private:
  struct CacheEntry {
    std::shared_ptr<const FlatPostingList> list;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
    bool in_window = false;  // which LRU list lru_it points into
  };

  explicit StoreBackedIndexSource(const storage::KVStore* store,
                                  StoreIndexSourceOptions options)
      : store_(store),
        options_(options),
        cooccurrence_(this, &types_),
        lfu_(options.admission) {
    if (options_.cache_admission && options_.cache_capacity_bytes != 0) {
      double f = std::min(1.0, std::max(0.0, options_.window_fraction));
      window_capacity_bytes_ =
          static_cast<size_t>(f * static_cast<double>(
                                      options_.cache_capacity_bytes));
    }
  }

  /// The one fetch path; `record_access` separates real query fetches
  /// (which feed the admission sketch) from advisory Prefetch warming
  /// (which must not double-count a keyword the caller is about to fetch).
  StatusOr<PostingListHandle> FetchListImpl(std::string_view keyword,
                                            bool record_access) const
      EXCLUDES(mu_);

  /// Posting count for `keyword` (0 = absent). Lazy mode consults the
  /// bloom filter first and only descends to the record head — memoizing
  /// the answer — on a "maybe"; eager mode reads the prebuilt map. Store
  /// errors during a lazy probe degrade to "absent" (these calls have no
  /// error channel; the caller's own FetchList surfaces the failure).
  uint32_t LookupListSize(std::string_view keyword) const
      EXCLUDES(vocab_mu_);

  /// Lazy mode only: runs the full record-head scan once, on the first
  /// caller that genuinely needs the whole vocabulary (ForEachKeyword).
  void EnsureFullVocabulary() const EXCLUDES(vocab_mu_);

  /// Squeezes the recency window down to its byte budget: each evictee
  /// duels into the main segment (admitted when every main victim it would
  /// displace is strictly colder), then the main segment is trimmed to its
  /// own budget. No-op without a window.
  void DemoteWindowOverflowLocked() const REQUIRES(mu_);

  const storage::KVStore* store_;  // not owned
  StoreIndexSourceOptions options_;

  // Immutable after Open(): metadata, so stats()/types() never take a
  // latch.
  xml::NodeTypeTable types_;
  StatisticsTable stats_;
  mutable CooccurrenceTable cooccurrence_;

  // Vocabulary. Eager open fills list_sizes_ completely and never mutates
  // it again; lazy open leaves it empty and memoizes record-head probes
  // into it, guarded by its own leaf latch (never held together with mu_
  // or across a store read — the fetch-then-reacquire protocol mirrors the
  // posting cache's).
  bool lazy_ = false;  // lazy_vocabulary requested AND bloom record present
  BloomFilter bloom_;
  mutable Mutex vocab_mu_{kLockRankStoreSourceVocab,
                          "StoreBackedIndexSource::vocab_mu_"};
  mutable std::unordered_map<std::string, uint32_t> list_sizes_
      GUARDED_BY(vocab_mu_);
  mutable bool vocab_complete_ GUARDED_BY(vocab_mu_) = false;

  // Bounded LRU over decoded lists. shared_ptr ownership lets eviction
  // proceed while queries still scan the evicted list through their pins.
  mutable Mutex mu_{kLockRankStoreSourceCache, "StoreBackedIndexSource::mu_"};
  mutable std::unordered_map<std::string, CacheEntry> cache_ GUARDED_BY(mu_);
  mutable std::list<std::string> lru_ GUARDED_BY(mu_);  // front = hottest
  mutable size_t cache_bytes_ GUARDED_BY(mu_) = 0;  // window + main together
  // W-TinyLFU recency window: a separate LRU whose entries bypass the
  // admission duel on insert and only face it on demotion. Empty (and
  // window_capacity_bytes_ == 0) unless options_.window_fraction > 0.
  mutable std::list<std::string> window_lru_ GUARDED_BY(mu_);
  mutable size_t window_bytes_ GUARDED_BY(mu_) = 0;
  size_t window_capacity_bytes_ = 0;
  // Admission sketch; advises eviction decisions under the same latch as
  // the LRU it protects.
  mutable TinyLfu lfu_ GUARDED_BY(mu_);
};

}  // namespace xrefine::index

#endif  // XREFINE_INDEX_STORE_INDEX_SOURCE_H_
