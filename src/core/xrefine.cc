#include "core/xrefine.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/timer.h"
#include "text/tokenizer.h"

namespace xrefine::core {

namespace {

struct QueryMetrics {
  metrics::Counter* count;
  metrics::Counter* rules_generated;
  metrics::Counter* candidates_enumerated;
  metrics::Counter* candidates_pruned;
  metrics::Histogram* prepare_us;
  metrics::Histogram* scan_us;
  metrics::Histogram* rank_us;
  metrics::Histogram* total_us;
};

const QueryMetrics& Metrics() {
  static const QueryMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return QueryMetrics{r.counter("query.count"),
                        r.counter("query.rules_generated"),
                        r.counter("query.candidates_enumerated"),
                        r.counter("query.candidates_pruned"),
                        r.histogram("query.prepare_us"),
                        r.histogram("query.scan_us"),
                        r.histogram("query.rank_us"),
                        r.histogram("query.total_us")};
  }();
  return m;
}

uint64_t ToMicros(double ms) {
  return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e3);
}

}  // namespace

std::string RefineAlgorithmName(RefineAlgorithm algorithm) {
  switch (algorithm) {
    case RefineAlgorithm::kStackRefine:
      return "stack-refine";
    case RefineAlgorithm::kPartition:
      return "partition";
    case RefineAlgorithm::kShortListEager:
      return "sle";
  }
  return "?";
}

XRefine::XRefine(const index::IndexSource* corpus,
                 const text::Lexicon* lexicon, XRefineOptions options)
    : corpus_(corpus),
      options_(std::move(options)),
      rule_generator_(corpus, lexicon, options_.rules) {
  if (options_.result_cache.enabled) {
    result_cache_ =
        std::make_unique<RefinementCache>(corpus, options_.result_cache);
  }
}

void XRefine::AttachQueryLog(const QueryLog& log,
                             const LogMiningOptions& options) {
  RuleSet mined = log.MineRules(options);  // mine outside the lock
  {
    MutexLock lock(&log_rules_mu_);
    log_rules_ = std::move(mined);
  }
  // Cached outcomes were computed under the old rule set; drop them all.
  // Queries racing this call may still serve (or coalesce onto) pre-swap
  // results, matching the class contract: each query sees either the old
  // or the new rule set atomically.
  if (result_cache_ != nullptr) result_cache_->InvalidateAll();
}

RefineInput XRefine::Prepare(const Query& q) const {
  RefineInput input = PrepareRefineInput(*corpus_, q, rule_generator_,
                                         options_.search_for_node);
  MutexLock lock(&log_rules_mu_);
  if (input.status.ok() && log_rules_.size() > 0) {
    input.rules = MergeRuleSets(input.rules, log_rules_);
    // Log rules may introduce keywords the corpus-mined KS missed.
    for (const std::string& k : input.rules.NewKeywords(q)) {
      if (input.universe.count(k) > 0) continue;
      auto handle_or = corpus_->FetchList(k);
      if (!handle_or.ok()) {
        input.status = handle_or.status();
        break;
      }
      index::PostingListHandle handle = std::move(handle_or).value();
      if (!handle) continue;
      input.keyword_index.emplace(k, input.keywords.size());
      input.keywords.push_back(k);
      input.lists.emplace_back(*handle);
      input.pins.push_back(std::move(handle));
      input.universe.insert(k);
    }
  }
  return input;
}

RefineOutcome XRefine::RunPrepared(const RefineInput& input) const {
  if (!input.status.ok()) {
    // A partially resolved input must not be answered: a list the store
    // failed to deliver would silently change conjunctive results.
    RefineOutcome failed;
    failed.status = input.status;
    return failed;
  }
  Timer scan_timer;
  RefineOutcome outcome = Dispatch(input);
  double algo_ms = scan_timer.ElapsedMillis();
  // FinalizeOutcome measured the ranking tail inside the algorithm; the
  // rest of the algorithm's wall time is the list scan / enumeration.
  outcome.query_stats.scan_ms =
      std::max(0.0, algo_ms - outcome.query_stats.rank_ms);
  outcome.query_stats.candidates_enumerated =
      outcome.stats.candidates_enumerated;
  outcome.query_stats.candidates_pruned = outcome.stats.candidates_pruned;

  const QueryMetrics& m = Metrics();
  m.count->Increment();
  m.candidates_enumerated->Increment(outcome.stats.candidates_enumerated);
  m.candidates_pruned->Increment(outcome.stats.candidates_pruned);
  m.scan_us->Record(ToMicros(outcome.query_stats.scan_ms));
  m.rank_us->Record(ToMicros(outcome.query_stats.rank_ms));
  return outcome;
}

RefineOutcome XRefine::Dispatch(const RefineInput& input) const {
  switch (options_.algorithm) {
    case RefineAlgorithm::kStackRefine: {
      StackRefineOptions opts;
      opts.top_k = options_.top_k;
      opts.ranking = options_.ranking;
      opts.rank_results = options_.rank_results;
      opts.infer_return_nodes = options_.infer_return_nodes;
      return StackRefine(*corpus_, input, opts);
    }
    case RefineAlgorithm::kPartition: {
      PartitionRefineOptions opts;
      opts.top_k = options_.top_k;
      opts.slca_algorithm = options_.slca_algorithm;
      opts.ranking = options_.ranking;
      opts.prune_partitions = options_.prune_partitions;
      opts.rank_results = options_.rank_results;
      opts.infer_return_nodes = options_.infer_return_nodes;
      return PartitionRefine(*corpus_, input, opts);
    }
    case RefineAlgorithm::kShortListEager: {
      SleOptions opts;
      opts.top_k = options_.top_k;
      opts.slca_algorithm = options_.slca_algorithm;
      opts.ranking = options_.ranking;
      opts.early_stop = options_.sle_early_stop;
      opts.rank_results = options_.rank_results;
      opts.infer_return_nodes = options_.infer_return_nodes;
      return ShortListEagerRefine(*corpus_, input, opts);
    }
  }
  return RefineOutcome{};
}

RefineOutcome XRefine::Run(const Query& q) const { return Run(q, nullptr); }

RefineOutcome XRefine::Run(const Query& q,
                           const RefineControl* control) const {
  if (result_cache_ != nullptr) {
    return result_cache_->GetOrCompute(
        q, control, [this, &q, control] { return RunUncached(q, control); });
  }
  return RunUncached(q, control);
}

RefineOutcome XRefine::RunUncached(const Query& q,
                                   const RefineControl* control) const {
  if (control != nullptr && control->ShouldStop()) {
    return StoppedOutcome(RefineStats{});
  }
  Timer prepare_timer;
  RefineInput input = Prepare(q);
  double prepare_ms = prepare_timer.ElapsedMillis();
  input.control = control;

  RefineOutcome outcome;
  if (control != nullptr && control->max_candidate_fanout != 0 &&
      input.status.ok() && input.rules.size() > control->max_candidate_fanout) {
    // Post-prepare admission gate: the rule count drives the candidate-RQ
    // enumeration, so refusing here spares the whole scan stage.
    outcome.status = Status::Unavailable(
        "candidate fan-out " + std::to_string(input.rules.size()) +
        " exceeds admission cap " +
        std::to_string(control->max_candidate_fanout));
  } else if (input.Stopped()) {
    outcome = StoppedOutcome(RefineStats{});
  } else {
    outcome = RunPrepared(input);
  }
  outcome.query_stats.prepare_ms = prepare_ms;
  outcome.query_stats.rules_generated = input.rules.size();

  const QueryMetrics& m = Metrics();
  m.rules_generated->Increment(input.rules.size());
  m.prepare_us->Record(ToMicros(prepare_ms));
  m.total_us->Record(ToMicros(outcome.query_stats.total_ms()));
  return outcome;
}

RefineOutcome XRefine::RunText(const std::string& query_text) const {
  return Run(text::TokenizeQuery(query_text));
}

}  // namespace xrefine::core
