// Porter stemming algorithm (Porter, 1980), used to generate word-stemming
// substitution rules (e.g. "match" <-> "matching", Q_X4 in the paper).
#ifndef XREFINE_TEXT_PORTER_STEMMER_H_
#define XREFINE_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace xrefine::text {

/// Returns the Porter stem of a lowercase ASCII word. Words shorter than
/// three characters are returned unchanged, per the original algorithm.
std::string PorterStem(std::string_view word);

/// True iff two *distinct* words share a Porter stem (the stemming-rule
/// predicate). Identical spellings return false by design: a word is never
/// a stem-variant substitution for itself, and rule generation
/// (workload/corruption.cc) relies on that exclusion when scanning a
/// vocabulary for variants.
bool ShareStem(std::string_view a, std::string_view b);

}  // namespace xrefine::text

#endif  // XREFINE_TEXT_PORTER_STEMMER_H_
