file(REMOVE_RECURSE
  "libxrefine_common.a"
)
