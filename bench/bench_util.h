// Shared setup for the paper-reproduction benchmark harnesses: corpus
// construction, query-pool generation, timing, and table printing.
#ifndef XREFINE_BENCH_BENCH_UTIL_H_
#define XREFINE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/xrefine.h"
#include "index/index_builder.h"
#include "text/lexicon.h"
#include "workload/baseball_generator.h"
#include "workload/dblp_generator.h"
#include "workload/query_generator.h"

namespace xrefine::bench {

/// A fully assembled experiment environment.
struct Env {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::IndexedCorpus> corpus;
  text::Lexicon lexicon = text::Lexicon::BuiltIn();

  core::RefineOutcome Run(const core::Query& q,
                          const core::XRefineOptions& options) const {
    core::XRefine engine(corpus.get(), &lexicon, options);
    return engine.Run(q);
  }
};

inline Env MakeDblpEnv(size_t num_authors, uint64_t seed = 42) {
  Env env;
  workload::DblpOptions options;
  options.num_authors = num_authors;
  options.seed = seed;
  env.doc = std::make_unique<xml::Document>(workload::GenerateDblp(options));
  env.corpus = index::BuildIndex(*env.doc);
  return env;
}

inline Env MakeBaseballEnv(size_t players_per_team = 25, uint64_t seed = 7) {
  Env env;
  workload::BaseballOptions options;
  options.players_per_team = players_per_team;
  options.seed = seed;
  env.doc =
      std::make_unique<xml::Document>(workload::GenerateBaseball(options));
  env.corpus = index::BuildIndex(*env.doc);
  return env;
}

inline std::vector<workload::CorruptedQuery> MakePool(
    const Env& env, size_t n, const std::string& target_tag,
    uint64_t seed = 123) {
  workload::Corruptor corruptor(&env.corpus->index(), &env.lexicon);
  workload::QueryGeneratorOptions options;
  options.target_tag = target_tag;
  options.seed = seed;
  workload::QueryGenerator qgen(env.doc.get(), env.corpus.get(), &corruptor,
                                options);
  return qgen.GeneratePool(n);
}

/// Median-of-runs wall time in milliseconds for one thunk.
template <typename Fn>
double TimeMs(Fn&& fn, int runs = 3) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    Timer t;
    fn();
    times.push_back(t.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status); 0 when unavailable (non-Linux). The memory headline
/// the scale benches report next to the per-structure byte counts: resident
/// bytes say what a representation holds, peak RSS says what building it
/// cost.
inline size_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<size_t>(
                 std::strtoull(line.c_str() + 6, nullptr, 10)) *
             1024;
    }
  }
  return 0;
}

}  // namespace xrefine::bench

#endif  // XREFINE_BENCH_BENCH_UTIL_H_
