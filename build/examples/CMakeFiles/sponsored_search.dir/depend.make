# Empty dependencies file for sponsored_search.
# This may be replaced when dependencies are built.
