// Fuzz surface: the XML parser over raw untrusted bytes, in both attribute
// modes and at a hostile-friendly nesting cap. A successful parse must
// produce a document whose writer output re-parses (write→parse fixpoint on
// the second generation); any failure must be a clean non-OK Status, never
// a crash, hang, or unbounded recursion.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "tools/fuzz/fuzz_driver.h"
#include "xml/document.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace {

void Require(bool cond, const char* what) {
  if (!cond) {
    std::fprintf(stderr, "xml invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  xrefine::fuzz::ByteReader in(data, size);
  uint8_t mode = in.U8();
  std::string_view text = in.Rest();

  xrefine::xml::ParseOptions options;
  options.attributes_as_children = (mode & 1) != 0;
  options.skip_whitespace_text = (mode & 2) != 0;
  // Alternate between the default depth cap and a tiny one: the tiny cap
  // exercises the rejection path on inputs the default happily nests.
  options.max_depth = (mode & 4) != 0 ? 16 : 512;

  auto doc_or = xrefine::xml::ParseXml(text, options);
  if (!doc_or.ok()) return 0;

  // Write → parse must converge: generation 2 reparses losslessly enough
  // to produce byte-identical generation-3 output. pretty=false so the
  // writer introduces no whitespace text nodes of its own (which the
  // skip_whitespace_text=false mode would then faithfully keep, and the
  // comparison would chase indentation instead of real data).
  xrefine::xml::WriteOptions write_options;
  write_options.pretty = false;
  std::string gen2 = xrefine::xml::WriteXml(doc_or.value(), write_options);
  auto doc2_or = xrefine::xml::ParseXml(gen2, options);
  Require(doc2_or.ok(), "writer output does not re-parse");
  std::string gen3 = xrefine::xml::WriteXml(doc2_or.value(), write_options);
  Require(gen2 == gen3, "write/parse did not reach a fixpoint");
  return 0;
}
