// Search-for-node inference (paper Section III-A): scores every node type T
// with C_for(T,Q) = ln(1 + sum_k f_k^T) * r^depth(T) (Formula 1), infers the
// candidate list L of desired search-for nodes, and provides the
// Meaningful-SLCA predicate of Definition 3.3: an SLCA result is meaningful
// iff some T in L lies on its root path.
#ifndef XREFINE_SLCA_SEARCH_FOR_NODE_H_
#define XREFINE_SLCA_SEARCH_FOR_NODE_H_

#include <string>
#include <vector>

#include "index/statistics.h"
#include "slca/slca_common.h"
#include "xml/node_type.h"

namespace xrefine::slca {

struct SearchForNodeOptions {
  /// Reduction factor r in Formula 1 (penalises deep types).
  double reduction_factor = 0.8;

  /// A type enters L when its confidence is at least this fraction of the
  /// best confidence ("comparable confidence", Guideline 3).
  double comparable_ratio = 0.8;

  /// Upper bound on |L|.
  size_t max_candidates = 3;

  /// Exclude the document-root type: the paper calls the root "a typical
  /// meaningless SLCA" and no user searches for whole documents.
  bool exclude_root_type = true;
};

struct TypeConfidence {
  xml::TypeId type = xml::kInvalidTypeId;
  double confidence = 0.0;
};

/// Scores all types with nonzero evidence for `query`, descending by
/// confidence.
std::vector<TypeConfidence> RankSearchForNodes(
    const std::vector<std::string>& query, const index::StatisticsTable& stats,
    const xml::NodeTypeTable& types, const SearchForNodeOptions& options = {});

/// The candidate list L (Guideline 3): top types with comparable confidence.
std::vector<TypeConfidence> InferSearchForNodes(
    const std::vector<std::string>& query, const index::StatisticsTable& stats,
    const xml::NodeTypeTable& types, const SearchForNodeOptions& options = {});

/// Definition 3.3: `result` is meaningful iff it is self-or-descendant of a
/// node of some candidate type.
bool IsMeaningfulSlca(const SlcaResult& result,
                      const std::vector<TypeConfidence>& candidates,
                      const xml::NodeTypeTable& types);

/// Filters a result list down to the meaningful ones.
std::vector<SlcaResult> FilterMeaningful(
    std::vector<SlcaResult> results,
    const std::vector<TypeConfidence>& candidates,
    const xml::NodeTypeTable& types);

}  // namespace xrefine::slca

#endif  // XREFINE_SLCA_SEARCH_FOR_NODE_H_
