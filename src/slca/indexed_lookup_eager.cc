#include "slca/indexed_lookup_eager.h"

#include <algorithm>

namespace xrefine::slca {

std::vector<SlcaResult> IndexedLookupEagerSlca(
    const std::vector<PostingSpan>& lists, const xml::NodeTypeTable& types) {
  if (lists.empty()) return {};
  for (const auto& span : lists) {
    if (span.empty()) return {};
  }

  // Anchor on the shortest list.
  size_t anchor = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size < lists[anchor].size) anchor = i;
  }

  uint64_t scanned = 0;
  uint64_t searches = 0;
  std::vector<SlcaResult> candidates;
  candidates.reserve(lists[anchor].size);
  for (const index::Posting& v : lists[anchor]) {
    ++scanned;
    // The deepest ancestor of v whose subtree meets every list: for each
    // other list the closest neighbours give the deepest possible LCA with
    // v; the candidate is the shallowest of those per-list LCAs.
    size_t depth = v.dewey.depth();
    for (size_t i = 0; i < lists.size() && depth > 0; ++i) {
      if (i == anchor) continue;
      const PostingSpan& span = lists[i];
      searches += 2;
      ptrdiff_t lm = LeftMatch(span, v.dewey);
      ptrdiff_t rm = RightMatch(span, v.dewey);
      size_t best = 0;
      if (lm >= 0) {
        best = std::max(
            best, xml::Dewey::CommonPrefix(v.dewey,
                                           span[static_cast<size_t>(lm)].dewey)
                      .depth());
      }
      if (rm < static_cast<ptrdiff_t>(span.size)) {
        best = std::max(
            best, xml::Dewey::CommonPrefix(v.dewey,
                                           span[static_cast<size_t>(rm)].dewey)
                      .depth());
      }
      depth = std::min(depth, best);
    }
    if (depth == 0) continue;  // no common ancestor below "nothing"
    candidates.push_back(SlcaResult{
        v.dewey.Prefix(depth),
        AncestorTypeAtDepth(types, v.type, depth)});
  }
  internal::Metrics().elements_scanned->Increment(scanned);
  internal::Metrics().lookups->Increment(searches);
  return KeepSmallest(std::move(candidates));
}

}  // namespace xrefine::slca
