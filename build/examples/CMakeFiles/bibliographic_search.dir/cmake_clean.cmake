file(REMOVE_RECURSE
  "CMakeFiles/bibliographic_search.dir/bibliographic_search.cpp.o"
  "CMakeFiles/bibliographic_search.dir/bibliographic_search.cpp.o.d"
  "bibliographic_search"
  "bibliographic_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliographic_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
