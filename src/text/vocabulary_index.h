// VocabularyIndex: the immutable, shareable vocabulary-derived structures
// rule mining needs — the sorted word list, the Porter-stem index, the
// dictionary segmenter, and the deletion-neighborhood spelling index.
//
// Before this existed every RuleGenerator (one per XRefine engine) copied
// the whole vocabulary out of its IndexSource and rebuilt all three
// structures; N engines serving one store paid N builds and N resident
// copies. Now the structures are built once into a shared_ptr snapshot
// (IndexSource::VocabularyIndexSnapshot caches one per edit distance) and
// every engine over the same source aliases it.
#ifndef XREFINE_TEXT_VOCABULARY_INDEX_H_
#define XREFINE_TEXT_VOCABULARY_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/segmenter.h"
#include "text/spelling_index.h"

namespace xrefine::text {

/// Immutable after Build(); safe for concurrent reads from any number of
/// threads with no synchronisation.
class VocabularyIndex {
 public:
  /// Builds every structure over `words` (need not be sorted; duplicates
  /// are dropped). `max_edit_distance` sizes the spelling index's deletion
  /// neighborhoods.
  static std::shared_ptr<const VocabularyIndex> Build(
      std::vector<std::string> words, int max_edit_distance);

  VocabularyIndex(const VocabularyIndex&) = delete;
  VocabularyIndex& operator=(const VocabularyIndex&) = delete;

  /// Sorted, deduplicated vocabulary. SpellingIndex::Match::word_id and the
  /// stem index's ids index into this vector.
  const std::vector<std::string>& words() const { return words_; }

  /// Ids of the words sharing `stem`, ascending (so variants enumerate in
  /// sorted word order); nullptr when no word has that stem.
  const std::vector<uint32_t>* StemVariants(std::string_view stem) const {
    auto it = stem_index_.find(stem);
    return it == stem_index_.end() ? nullptr : &it->second;
  }

  const Segmenter& segmenter() const { return *segmenter_; }
  const SpellingIndex& spelling() const { return *spelling_; }

 private:
  VocabularyIndex() = default;

  struct StringViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> words_;
  // Porter stem -> ids of words sharing it, ascending.
  std::unordered_map<std::string, std::vector<uint32_t>, StringViewHash,
                     std::equal_to<>>
      stem_index_;
  std::unique_ptr<Segmenter> segmenter_;
  std::unique_ptr<SpellingIndex> spelling_;
};

}  // namespace xrefine::text

#endif  // XREFINE_TEXT_VOCABULARY_INDEX_H_
