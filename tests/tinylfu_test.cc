// Tests for the TinyLFU admission sketch: doorkeeper behavior, counter
// saturation, frequency ordering, and the aging pass (counter halving +
// doorkeeper clear).
#include <gtest/gtest.h>

#include <string>

#include "index/tinylfu.h"

namespace xrefine::index {
namespace {

TEST(TinyLfuTest, UnseenKeyEstimatesZero) {
  TinyLfu lfu;
  EXPECT_EQ(lfu.Estimate("never-seen"), 0u);
}

TEST(TinyLfuTest, DoorkeeperAbsorbsFirstAccess) {
  TinyLfu lfu;
  lfu.RecordAccess("key");
  // First sighting sets only the doorkeeper bit...
  EXPECT_EQ(lfu.Estimate("key"), 1u);
  // ...and repeat sightings feed the sketch on top of it.
  lfu.RecordAccess("key");
  EXPECT_EQ(lfu.Estimate("key"), 2u);
  lfu.RecordAccess("key");
  EXPECT_EQ(lfu.Estimate("key"), 3u);
}

TEST(TinyLfuTest, HotterKeysEstimateHigher) {
  TinyLfu lfu;
  for (int i = 0; i < 12; ++i) lfu.RecordAccess("hot");
  lfu.RecordAccess("cold");
  EXPECT_GT(lfu.Estimate("hot"), lfu.Estimate("cold"));
  EXPECT_EQ(lfu.Estimate("cold"), 1u);
}

TEST(TinyLfuTest, CountersSaturate) {
  TinyLfu lfu;
  for (int i = 0; i < 100; ++i) lfu.RecordAccess("pegged");
  // 4-bit counters cap at 15; the doorkeeper bit adds one on top.
  EXPECT_EQ(lfu.Estimate("pegged"), 16u);
}

TEST(TinyLfuTest, SamplePeriodDefaultsToTenXCounters) {
  TinyLfuOptions options;
  options.counters_per_row = 64;
  TinyLfu lfu(options);
  EXPECT_EQ(lfu.sample_period(), 640u);
}

TEST(TinyLfuTest, AgingHalvesCountersAndClearsDoorkeeper) {
  TinyLfuOptions options;
  options.sample_period = 10;
  TinyLfu lfu(options);

  for (int i = 0; i < 9; ++i) lfu.RecordAccess("hot");
  ASSERT_EQ(lfu.Estimate("hot"), 9u);  // doorkeeper 1 + sketch 8
  ASSERT_EQ(lfu.age_count(), 0u);
  ASSERT_EQ(lfu.accesses_since_age(), 9u);

  lfu.RecordAccess("one-hit");  // 10th access triggers the aging pass

  EXPECT_EQ(lfu.age_count(), 1u);
  EXPECT_EQ(lfu.accesses_since_age(), 0u);
  // The hot key's sketch counters halved (8 -> 4) and its doorkeeper bit
  // cleared: recent history is discounted, not erased.
  EXPECT_EQ(lfu.Estimate("hot"), 4u);
  // The one-hit wonder existed only in the doorkeeper; aging forgets it
  // entirely.
  EXPECT_EQ(lfu.Estimate("one-hit"), 0u);
}

TEST(TinyLfuTest, RepeatedAgingDecaysToZero) {
  TinyLfuOptions options;
  options.sample_period = 8;
  TinyLfu lfu(options);
  for (int i = 0; i < 7; ++i) lfu.RecordAccess("fading");
  uint64_t previous = lfu.Estimate("fading");
  // Drive aging passes with traffic on other keys; the fading key's
  // estimate must be monotonically non-increasing and hit zero.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 8; ++i) {
      lfu.RecordAccess("noise-" + std::to_string(round));
    }
    uint64_t now = lfu.Estimate("fading");
    EXPECT_LE(now, previous);
    previous = now;
  }
  EXPECT_EQ(lfu.Estimate("fading"), 0u);
}

}  // namespace
}  // namespace xrefine::index
