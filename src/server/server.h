// The refinement daemon: a loopback TCP server speaking the frame.h wire
// format. One accept thread, one reader thread per connection, and a fixed
// worker pool pulling from a bounded RequestQueue.
//
// Request flow (all admission work happens in the reader thread, before the
// queue, on metadata only):
//
//   reader: read frame -> decode -> tokenize
//     result-cache hit -> response frame built inline, never queued (the
//       fast path: when the primary engine's RefinementCache holds the
//       exact query, the reader answers from it directly — no queue hop,
//       no worker wakeup, and the response is batched with its neighbours
//       into one send. Hits consume no worker and no window slot, so they
//       bypass fairness and admission; both gates exist to protect compute
//       the fast path never touches.)
//     ... miss -> AdmissionController::Decide
//     kShed    -> RETRY_AFTER frame, never queued
//     kReject  -> error frame (kUnavailable), never queued
//     kDegrade -> queued tagged for the degraded engine
//     kAdmit   -> queued for the primary engine
//     (queue full despite the high-water check: shed — the bound is hard)
//   worker: Pop -> XRefine::Run(query, &control) -> response/error frame
//
// The RefineControl carries the client deadline, the session's closed flag
// as the cancel signal (a disconnect aborts the query mid-scan), and the
// post-prepare candidate fan-out cap.
//
// Sessions are pipelined: the reader admits and enqueues each frame without
// waiting for earlier responses, several workers may be answering one
// session at once, and responses go out in completion order — correlation
// is purely the echoed request id, serialized per session by write_mu.
// Fairness: before the global queue high-water is even consulted, a session
// already holding max_inflight_per_session queued-or-running requests is
// shed with RETRY_AFTER, so one firehose client saturates its own window
// instead of the shared queue.
//
// Robustness contract: a client disconnect is never fatal. SIGPIPE is
// ignored once at Start and every send uses MSG_NOSIGNAL; EPIPE/ECONNRESET
// mark the session closed and tear it down cleanly. Lock order is
// queue (50) < session table (54) < per-session write mutex (60), all above
// every engine lock — no server lock is ever held across engine work.
#ifndef XREFINE_SERVER_SERVER_H_
#define XREFINE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/xrefine.h"
#include "server/admission.h"
#include "server/frame.h"
#include "server/request_queue.h"

namespace xrefine::server {

struct ServerOptions {
  /// TCP port to bind on loopback; 0 picks an ephemeral port (read it back
  /// via port() after Start).
  uint16_t port = 0;
  size_t num_workers = 4;
  size_t queue_capacity = 64;
  /// Suggested client back-off carried in shed frames.
  uint32_t retry_after_ms = 50;
  /// Client deadlines are clamped to this; 0 in a request means "none".
  uint32_t max_deadline_ms = 60'000;
  /// Post-prepare admission gate: a prepared rule set larger than this
  /// aborts with kUnavailable before any scan (RefineControl). 0 disables.
  size_t max_candidate_fanout = 50'000;
  /// Per-session pipelining window: requests a session may have queued or
  /// running at once before further frames are shed with RETRY_AFTER
  /// (checked before the global queue high-water — per-client fairness).
  /// 0 = unlimited. Clients should keep their pipeline depth at or below
  /// this.
  size_t max_inflight_per_session = 16;
  AdmissionOptions admission;
};

/// One daemon instance. Construction is cheap; Start() binds and spawns
/// threads, Stop() (also run by the destructor) tears everything down and
/// joins. `primary` answers admitted queries; `degraded` (may be null, then
/// degrades fall back to primary) should be a second engine over the same
/// corpus with capped options — see MakeDegradedOptions.
class Server {
 public:
  Server(const core::XRefine* primary, const core::XRefine* degraded,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:options.port, starts the accept thread and workers.
  Status Start();

  /// Stops accepting, closes every session, drains the queue, joins all
  /// threads. Idempotent.
  void Stop();

  /// The bound port (after a successful Start).
  uint16_t port() const { return port_; }

  const AdmissionController& admission() const { return admission_; }
  AdmissionController& mutable_admission() { return admission_; }

 private:
  struct Session {
    int fd = -1;
    uint64_t id = 0;
    /// Serialises frame writes (reader acks and worker responses
    /// interleave on one socket).
    Mutex write_mu{kLockRankServerSession, "server::Session::write_mu"};
    /// Set on disconnect/teardown; doubles as the RefineControl cancel
    /// flag so in-flight queries for this session stop scanning.
    std::atomic<bool> closed{false};
    /// Queued + running requests for this session (the fairness window).
    /// Incremented by the reader before Push, decremented by the worker
    /// after ProcessWork.
    std::atomic<size_t> inflight{0};

    /// Half-closes the socket so blocked reads/writes fail; the fd itself
    /// stays open until the last reference drops (no fd-reuse races).
    void Close();
    ~Session();
  };

  struct Work {
    std::shared_ptr<Session> session;
    uint64_t request_id = 0;
    core::Query query;
    /// Absolute deadline (epoch time_point{} = none), fixed at admission
    /// so queue wait counts against the client's budget.
    std::chrono::steady_clock::time_point deadline{};
    bool degraded = false;
    /// Enqueue time, for the end-to-end server.request_us histogram.
    std::chrono::steady_clock::time_point accepted_at{};
  };

  void AcceptLoop();
  void SessionLoop(std::shared_ptr<Session> session);
  void WorkerLoop();
  /// Reader-thread handling of one refine request: result-cache fast path,
  /// then admission + enqueue. An inline cache hit appends its response
  /// frame to `*tx` (the session loop's batched-send buffer) instead of
  /// writing the socket — the loop flushes before it would block reading.
  void HandleRefineRequest(const std::shared_ptr<Session>& session,
                           uint64_t request_id, const RefineRequest& request,
                           std::string* tx);
  void ProcessWork(Work& work);
  /// Writes one encoded frame under the session write mutex. EPIPE and
  /// ECONNRESET close the session and report IoError; neither is fatal to
  /// the server.
  Status SendFrame(Session& session, const std::string& frame);
  void RemoveSession(uint64_t id) EXCLUDES(sessions_mu_);

  const core::XRefine* primary_;
  const core::XRefine* degraded_;  // may be null
  ServerOptions options_;
  AdmissionController admission_;
  RequestQueue<Work> queue_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_session_id_{1};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  Mutex sessions_mu_{kLockRankServerSessions, "server::Server::sessions_mu_"};
  std::map<uint64_t, std::shared_ptr<Session>> sessions_
      GUARDED_BY(sessions_mu_);
  std::vector<std::thread> session_threads_ GUARDED_BY(sessions_mu_);

  // server.* metrics, resolved once at construction.
  metrics::Counter* requests_;
  metrics::Counter* admitted_;
  metrics::Counter* degraded_count_;
  metrics::Counter* rejected_;
  metrics::Counter* shed_;
  metrics::Counter* session_capped_;
  metrics::Counter* inline_hits_;
  metrics::Counter* bad_frames_;
  metrics::Counter* send_errors_;
  metrics::Counter* disconnects_;
  metrics::Gauge* sessions_gauge_;
  metrics::Gauge* queue_depth_gauge_;
  metrics::Histogram* request_us_;
};

/// The degraded-engine recipe: `base` with spelling edit distance capped at
/// 1, fewer spelling candidates, and no result ranking — the cheap config
/// the admission gate routes heavy queries to.
core::XRefineOptions MakeDegradedOptions(core::XRefineOptions base);

}  // namespace xrefine::server

#endif  // XREFINE_SERVER_SERVER_H_
