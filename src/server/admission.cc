#include "server/admission.h"

namespace xrefine::server {

std::string AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kDegrade:
      return "degrade";
    case AdmissionDecision::kReject:
      return "reject";
    case AdmissionDecision::kShed:
      return "shed";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const index::IndexSource* corpus)
    : options_(options),
      corpus_(corpus),
      prepare_us_(metrics::Registry::Global().histogram("query.prepare_us")),
      scan_us_(metrics::Registry::Global().histogram("query.scan_us")),
      rank_us_(metrics::Registry::Global().histogram("query.rank_us")) {}

void AdmissionController::SetStageHistogramsForTesting(
    const metrics::Histogram* prepare_us, const metrics::Histogram* scan_us,
    const metrics::Histogram* rank_us) {
  prepare_us_ = prepare_us;
  scan_us_ = scan_us;
  rank_us_ = rank_us;
}

uint64_t AdmissionController::HotPathP95Us() const {
  // All three stages must have history: during warmup a single slow outlier
  // in one histogram must not flip the server into degrade mode.
  if (prepare_us_->count() < options_.min_samples ||
      scan_us_->count() < options_.min_samples ||
      rank_us_->count() < options_.min_samples) {
    return 0;
  }
  return prepare_us_->QuantileUpperBound(0.95) +
         scan_us_->QuantileUpperBound(0.95) +
         rank_us_->QuantileUpperBound(0.95);
}

AdmissionController::Verdict AdmissionController::Decide(
    const core::Query& query, size_t queue_depth,
    size_t queue_capacity) const {
  Verdict v;
  if (!options_.enabled) return v;

  // Shed first: when the queue is already past high water, even a cheap
  // query only adds wait time, and the depth check costs nothing.
  if (queue_capacity > 0 &&
      static_cast<double>(queue_depth) >=
          options_.queue_high_water * static_cast<double>(queue_capacity)) {
    v.decision = AdmissionDecision::kShed;
    v.reason = "queue depth " + std::to_string(queue_depth) + "/" +
               std::to_string(queue_capacity) + " past high water";
    return v;
  }

  if (query.size() > options_.max_terms) {
    v.decision = AdmissionDecision::kReject;
    v.reason = "query has " + std::to_string(query.size()) +
               " terms, cap is " + std::to_string(options_.max_terms);
    return v;
  }

  for (const std::string& term : query) {
    v.list_volume += corpus_->ListSize(term);
  }
  if (v.list_volume > options_.reject_list_volume) {
    v.decision = AdmissionDecision::kReject;
    v.reason = "list volume " + std::to_string(v.list_volume) +
               " postings exceeds reject cap " +
               std::to_string(options_.reject_list_volume);
    return v;
  }
  if (v.list_volume > options_.degrade_list_volume) {
    v.decision = AdmissionDecision::kDegrade;
    v.reason = "list volume " + std::to_string(v.list_volume) +
               " postings exceeds degrade threshold " +
               std::to_string(options_.degrade_list_volume);
    return v;
  }

  uint64_t p95 = HotPathP95Us();
  if (p95 > options_.hot_p95_us &&
      v.list_volume > options_.hot_degrade_list_volume) {
    v.decision = AdmissionDecision::kDegrade;
    v.reason = "live p95 " + std::to_string(p95) + "us is hot; degrading " +
               std::to_string(v.list_volume) + "-posting query";
    return v;
  }
  return v;
}

}  // namespace xrefine::server
