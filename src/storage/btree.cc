#include "storage/btree.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "storage/serde.h"

namespace xrefine::storage {

namespace {

struct BtreeMetrics {
  metrics::Counter* node_reads;        // tree pages fetched during descents
  metrics::Counter* overflow_follows;  // overflow-chain pages fetched
  metrics::Counter* cursor_steps;      // Cursor::Next advances
};

const BtreeMetrics& Metrics() {
  static const BtreeMetrics m = [] {
    auto& r = metrics::Registry::Global();
    return BtreeMetrics{r.counter("btree.node_reads"),
                        r.counter("btree.overflow_follows"),
                        r.counter("btree.cursor_steps")};
  }();
  return m;
}

// --- Page layout -----------------------------------------------------------
// Common header:
//   0  : type      u8   (1=leaf, 2=internal, 3=overflow)
//   1  : reserved  u8
//   2  : ncells    u16
//   4  : link      u32  (leaf: next leaf; internal: leftmost child;
//                        overflow: next overflow page)
//   8  : content   u16  (offset where the cell content area begins; cells
//                        grow downward from the end of the page)
//   10 : frag      u16  (bytes lost to replaced/deleted cells)
//   12 : slot array, u16 per cell, sorted by key
//
// Leaf cell:     key_len u16 | flags u8 | val_len u32 | key | payload
//                payload = value bytes (flags 0) or first overflow PageId
//                (flags 1)
// Internal cell: key_len u16 | child u32 | key
// Overflow page: header.link = next page, bytes [12, 12+used) hold data,
//                used u16 stored at offset 8 (reusing the content field).

constexpr uint8_t kLeafPage = 1;
constexpr uint8_t kInternalPage = 2;
constexpr uint8_t kOverflowPage = 3;

constexpr size_t kHeaderSize = 12;
constexpr size_t kOverflowCapacity = kPageSize - kHeaderSize;
constexpr size_t kMaxInlineValue = 1024;

uint8_t PageType(const Page* p) { return static_cast<uint8_t>(p->data[0]); }
void SetPageType(Page* p, uint8_t t) { p->data[0] = static_cast<char>(t); }

uint16_t NumCells(const Page* p) { return GetFixed16(p->data + 2); }
void SetNumCells(Page* p, uint16_t n) {
  std::memcpy(p->data + 2, &n, 2);
}

uint32_t Link(const Page* p) { return GetFixed32(p->data + 4); }
void SetLink(Page* p, uint32_t v) { std::memcpy(p->data + 4, &v, 4); }

uint16_t ContentOffset(const Page* p) { return GetFixed16(p->data + 8); }
void SetContentOffset(Page* p, uint16_t v) { std::memcpy(p->data + 8, &v, 2); }

uint16_t FragBytes(const Page* p) { return GetFixed16(p->data + 10); }
void SetFragBytes(Page* p, uint16_t v) { std::memcpy(p->data + 10, &v, 2); }

uint16_t SlotAt(const Page* p, int i) {
  return GetFixed16(p->data + kHeaderSize + 2 * static_cast<size_t>(i));
}
void SetSlotAt(Page* p, int i, uint16_t off) {
  std::memcpy(p->data + kHeaderSize + 2 * static_cast<size_t>(i), &off, 2);
}

void InitNodePage(Page* p, uint8_t type) {
  std::memset(p->data, 0, kPageSize);
  SetPageType(p, type);
  SetNumCells(p, 0);
  SetLink(p, kInvalidPageId);
  SetContentOffset(p, static_cast<uint16_t>(kPageSize));
  SetFragBytes(p, 0);
}

size_t FreeSpace(const Page* p) {
  size_t slots_end = kHeaderSize + 2 * static_cast<size_t>(NumCells(p));
  return ContentOffset(p) - slots_end;
}

// --- Cell accessors ---------------------------------------------------------

std::string_view LeafCellKey(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  uint16_t key_len = GetFixed16(cell);
  return std::string_view(cell + 7, key_len);
}

uint8_t LeafCellFlags(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  return static_cast<uint8_t>(cell[2]);
}

uint32_t LeafCellValueLength(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  return GetFixed32(cell + 3);
}

const char* LeafCellPayload(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  uint16_t key_len = GetFixed16(cell);
  return cell + 7 + key_len;
}

size_t LeafCellSize(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  uint16_t key_len = GetFixed16(cell);
  uint8_t flags = static_cast<uint8_t>(cell[2]);
  uint32_t val_len = GetFixed32(cell + 3);
  return 7 + key_len + (flags == 0 ? val_len : 4u);
}

std::string_view InternalCellKey(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  uint16_t key_len = GetFixed16(cell);
  return std::string_view(cell + 6, key_len);
}

uint32_t InternalCellChild(const Page* p, int i) {
  const char* cell = p->data + SlotAt(p, i);
  return GetFixed32(cell + 2);
}

// Binary search over leaf cells: first index with key >= target; sets
// *found when an exact match exists.
int LeafLowerBound(const Page* p, std::string_view key, bool* found) {
  int lo = 0;
  int hi = NumCells(p);
  *found = false;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    std::string_view k = LeafCellKey(p, mid);
    if (k < key) {
      lo = mid + 1;
    } else {
      if (k == key) *found = true;
      hi = mid;
    }
  }
  return lo;
}

// Internal child for `key`: the child whose key range contains it.
// Cells hold separator keys: child(i) covers [key_i, key_{i+1}); the
// leftmost link covers keys below key_0.
uint32_t InternalChildFor(const Page* p, std::string_view key) {
  int lo = 0;
  int hi = NumCells(p);
  // First index with separator > key.
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (InternalCellKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return Link(p);
  return InternalCellChild(p, lo - 1);
}

// Materialised leaf cell used during splits.
struct LeafCellImage {
  std::string key;
  uint8_t flags;
  uint32_t val_len;
  std::string payload;  // inline value bytes or 4-byte overflow page id

  size_t size() const { return 7 + key.size() + payload.size(); }
};

LeafCellImage ReadLeafCell(const Page* p, int i) {
  LeafCellImage c;
  c.key = std::string(LeafCellKey(p, i));
  c.flags = LeafCellFlags(p, i);
  c.val_len = LeafCellValueLength(p, i);
  size_t payload_len = (c.flags == 0) ? c.val_len : 4u;
  c.payload.assign(LeafCellPayload(p, i), payload_len);
  return c;
}

// Appends a leaf cell image to a freshly reset page. Caller guarantees fit.
void AppendLeafCell(Page* p, const LeafCellImage& c) {
  uint16_t n = NumCells(p);
  uint16_t off = static_cast<uint16_t>(ContentOffset(p) - c.size());
  char* cell = p->data + off;
  uint16_t key_len = static_cast<uint16_t>(c.key.size());
  std::memcpy(cell, &key_len, 2);
  cell[2] = static_cast<char>(c.flags);
  std::memcpy(cell + 3, &c.val_len, 4);
  std::memcpy(cell + 7, c.key.data(), c.key.size());
  std::memcpy(cell + 7 + c.key.size(), c.payload.data(), c.payload.size());
  SetContentOffset(p, off);
  SetSlotAt(p, n, off);
  SetNumCells(p, static_cast<uint16_t>(n + 1));
}

struct InternalCellImage {
  std::string key;
  uint32_t child;
  size_t size() const { return 6 + key.size(); }
};

InternalCellImage ReadInternalCell(const Page* p, int i) {
  InternalCellImage c;
  c.key = std::string(InternalCellKey(p, i));
  c.child = InternalCellChild(p, i);
  return c;
}

void AppendInternalCell(Page* p, const InternalCellImage& c) {
  uint16_t n = NumCells(p);
  uint16_t off = static_cast<uint16_t>(ContentOffset(p) - c.size());
  char* cell = p->data + off;
  uint16_t key_len = static_cast<uint16_t>(c.key.size());
  std::memcpy(cell, &key_len, 2);
  std::memcpy(cell + 2, &c.child, 4);
  std::memcpy(cell + 6, c.key.data(), c.key.size());
  SetContentOffset(p, off);
  SetSlotAt(p, n, off);
  SetNumCells(p, static_cast<uint16_t>(n + 1));
}

// Rebuilds a page from its cell images in slot order, reclaiming fragmented
// space.
void CompactLeaf(Page* p) {
  std::vector<LeafCellImage> cells;
  uint16_t n = NumCells(p);
  cells.reserve(n);
  for (int i = 0; i < n; ++i) cells.push_back(ReadLeafCell(p, i));
  uint32_t link = Link(p);
  InitNodePage(p, kLeafPage);
  SetLink(p, link);
  for (const auto& c : cells) AppendLeafCell(p, c);
}

void CompactInternal(Page* p) {
  std::vector<InternalCellImage> cells;
  uint16_t n = NumCells(p);
  cells.reserve(n);
  for (int i = 0; i < n; ++i) cells.push_back(ReadInternalCell(p, i));
  uint32_t link = Link(p);
  InitNodePage(p, kInternalPage);
  SetLink(p, link);
  for (const auto& c : cells) AppendInternalCell(p, c);
}

// Inserts a leaf cell image at slot position `pos`. Caller checked space.
void InsertLeafCellAt(Page* p, int pos, const LeafCellImage& c) {
  uint16_t n = NumCells(p);
  uint16_t off = static_cast<uint16_t>(ContentOffset(p) - c.size());
  char* cell = p->data + off;
  uint16_t key_len = static_cast<uint16_t>(c.key.size());
  std::memcpy(cell, &key_len, 2);
  cell[2] = static_cast<char>(c.flags);
  std::memcpy(cell + 3, &c.val_len, 4);
  std::memcpy(cell + 7, c.key.data(), c.key.size());
  std::memcpy(cell + 7 + c.key.size(), c.payload.data(), c.payload.size());
  SetContentOffset(p, off);
  for (int i = n; i > pos; --i) SetSlotAt(p, i, SlotAt(p, i - 1));
  SetSlotAt(p, pos, off);
  SetNumCells(p, static_cast<uint16_t>(n + 1));
}

void InsertInternalCellAt(Page* p, int pos, const InternalCellImage& c) {
  uint16_t n = NumCells(p);
  uint16_t off = static_cast<uint16_t>(ContentOffset(p) - c.size());
  char* cell = p->data + off;
  uint16_t key_len = static_cast<uint16_t>(c.key.size());
  std::memcpy(cell, &key_len, 2);
  std::memcpy(cell + 2, &c.child, 4);
  std::memcpy(cell + 6, c.key.data(), c.key.size());
  SetContentOffset(p, off);
  for (int i = n; i > pos; --i) SetSlotAt(p, i, SlotAt(p, i - 1));
  SetSlotAt(p, pos, off);
  SetNumCells(p, static_cast<uint16_t>(n + 1));
}

void RemoveCellAt(Page* p, int pos, size_t cell_size) {
  uint16_t n = NumCells(p);
  SetFragBytes(p, static_cast<uint16_t>(
                      std::min<size_t>(UINT16_MAX,
                                       FragBytes(p) + cell_size)));
  for (int i = pos; i + 1 < n; ++i) SetSlotAt(p, i, SlotAt(p, i + 1));
  SetNumCells(p, static_cast<uint16_t>(n - 1));
}

// --- Untrusted-page validation ----------------------------------------------

// Deeper than any tree a 32-bit page id space can hold; a descent that has
// not reached a leaf after this many hops is following a page cycle in a
// corrupt file, not a path.
constexpr int kMaxDescentDepth = 64;

// Bounds-checks the slotted-cell geometry of a node page before any cell
// accessor trusts its offsets: the type byte, the slot array against the
// content offset, and every cell's full extent (header + key + payload)
// against the page end. Memoised on the Page via layout_checked, so a page
// pays one pass per load, not one per access. Pages the tree writes itself
// satisfy this by construction; the check exists for bytes that came off
// disk.
bool ValidNodePage(const Page* p) {
  if (p->layout_checked.load(std::memory_order_acquire)) return true;
  uint8_t type = PageType(p);
  if (type != kLeafPage && type != kInternalPage) return false;
  size_t n = NumCells(p);
  size_t slots_end = kHeaderSize + 2 * n;
  size_t content = ContentOffset(p);
  if (slots_end > content || content > kPageSize) return false;
  for (size_t i = 0; i < n; ++i) {
    uint64_t off = SlotAt(p, static_cast<int>(i));
    if (off < content || off >= kPageSize) return false;
    const char* cell = p->data + off;
    if (type == kLeafPage) {
      if (off + 7 > kPageSize) return false;
      uint64_t key_len = GetFixed16(cell);
      uint8_t flags = static_cast<uint8_t>(cell[2]);
      uint64_t payload_len = (flags == 0) ? GetFixed32(cell + 3) : 4u;
      if (off + 7 + key_len + payload_len > kPageSize) return false;
    } else {
      if (off + 6 > kPageSize) return false;
      uint64_t key_len = GetFixed16(cell);
      if (off + 6 + key_len > kPageSize) return false;
    }
  }
  p->layout_checked.store(true, std::memory_order_release);
  return true;
}

// Overflow pages carry no slot array; their one untrusted field is the
// used-bytes count (stored in the content-offset slot), which must not
// reach past the page end.
bool ValidOverflowPage(const Page* p) {
  return PageType(p) == kOverflowPage &&
         ContentOffset(p) <= kOverflowCapacity;
}

}  // namespace

// --- BTree ------------------------------------------------------------------

StatusOr<std::unique_ptr<BTree>> BTree::Open(Pager* pager) {
  std::unique_ptr<BTree> tree(new BTree(pager));
  WriterMutexLock lock(&tree->mu_);
  PageGuard meta = pager->Fetch(0);
  if (!meta.valid()) return Status::Corruption("missing metadata page");
  uint32_t magic = GetFixed32(meta->data);
  constexpr uint32_t kMagic = 0x58524254;  // "XRBT"
  if (magic == 0) {
    // Fresh file: create an empty root leaf.
    PageGuard root = pager->NewPage();
    InitNodePage(root.get(), kLeafPage);
    tree->root_ = root.id();
    tree->size_ = 0;
    meta.Release();
    tree->WriteMeta();
  } else if (magic == kMagic) {
    tree->root_ = GetFixed32(meta->data + 4);
    tree->size_ = GetFixed64(meta->data + 8);
    PageGuard root = pager->Fetch(tree->root_);
    if (!root.valid()) {
      return Status::Corruption("metadata points at a missing root page");
    }
    if (!ValidNodePage(root.get())) {
      return Status::Corruption("root is not a valid node page");
    }
  } else {
    return Status::Corruption("bad btree magic");
  }
  return tree;
}

void BTree::WriteMeta() {
  PageGuard meta = pager_->Fetch(0);
  XR_CHECK(meta.valid());
  constexpr uint32_t kMagic = 0x58524254;
  std::memcpy(meta->data, &kMagic, 4);
  std::memcpy(meta->data + 4, &root_, 4);
  std::memcpy(meta->data + 8, &size_, 8);
  meta.MarkDirty();
}

PageGuard BTree::FindLeaf(std::string_view key) const {
  PageId cur = root_;
  for (int depth = 0; depth < kMaxDescentDepth; ++depth) {
    PageGuard p = pager_->Fetch(cur);
    Metrics().node_reads->Increment();
    if (!p.valid() || !ValidNodePage(p.get())) return PageGuard();
    if (PageType(p.get()) == kLeafPage) return p;
    cur = InternalChildFor(p.get(), key);
  }
  return PageGuard();  // descent never bottomed out: page cycle
}

std::string BTree::EncodePayload(std::string_view value) {
  if (value.size() <= kMaxInlineValue) return std::string(value);
  // Spill to an overflow chain; keep the previous page pinned only until
  // its link is patched.
  PageId first = kInvalidPageId;
  PageGuard prev;
  size_t pos = 0;
  while (pos < value.size()) {
    PageGuard ovf = pager_->NewPage();
    InitNodePage(ovf.get(), kOverflowPage);
    size_t chunk = std::min(kOverflowCapacity, value.size() - pos);
    std::memcpy(ovf->data + kHeaderSize, value.data() + pos, chunk);
    SetContentOffset(ovf.get(), static_cast<uint16_t>(chunk));  // "used"
    SetLink(ovf.get(), kInvalidPageId);
    ovf.MarkDirty();
    if (prev.valid()) {
      SetLink(prev.get(), ovf.id());
      prev.MarkDirty();
    } else {
      first = ovf.id();
    }
    prev = std::move(ovf);
    pos += chunk;
  }
  std::string payload;
  PutFixed32(&payload, first);
  return payload;
}

Status BTree::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (key.size() > kMaxKeyLength) {
    return Status::InvalidArgument("key too long: " +
                                   std::to_string(key.size()));
  }
  WriterMutexLock lock(&mu_);
  bool replaced = false;
  std::optional<SplitResult> split;
  XREFINE_RETURN_IF_ERROR(
      InsertRecursive(root_, key, value, &replaced, &split));
  if (split.has_value()) {
    PageGuard new_root = pager_->NewPage();
    InitNodePage(new_root.get(), kInternalPage);
    SetLink(new_root.get(), root_);
    AppendInternalCell(new_root.get(),
                       InternalCellImage{split->separator, split->right});
    new_root.MarkDirty();
    root_ = new_root.id();
  }
  if (!replaced) ++size_;
  WriteMeta();
  return Status::OK();
}

Status BTree::InsertRecursive(PageId page_id, std::string_view key,
                              std::string_view value, bool* replaced,
                              std::optional<SplitResult>* split, int depth) {
  if (depth >= kMaxDescentDepth) {
    return Status::Corruption("insert descent too deep: page cycle");
  }
  PageGuard p = pager_->Fetch(page_id);
  Metrics().node_reads->Increment();
  if (!p.valid()) return Status::Corruption("dangling page id");
  if (!ValidNodePage(p.get())) {
    return Status::Corruption("invalid node page " + std::to_string(page_id));
  }
  if (PageType(p.get()) == kLeafPage) {
    return InsertIntoLeaf(p.get(), key, value, replaced, split);
  }
  uint32_t child = InternalChildFor(p.get(), key);
  std::optional<SplitResult> child_split;
  XREFINE_RETURN_IF_ERROR(
      InsertRecursive(child, key, value, replaced, &child_split, depth + 1));
  if (!child_split.has_value()) return Status::OK();
  return InsertIntoInternal(p.get(), *child_split, split);
}

Status BTree::InsertIntoLeaf(Page* page, std::string_view key,
                             std::string_view value, bool* replaced,
                             std::optional<SplitResult>* split) {
  LeafCellImage cell;
  cell.key = std::string(key);
  cell.payload = EncodePayload(value);
  cell.val_len = static_cast<uint32_t>(value.size());
  cell.flags = (value.size() <= kMaxInlineValue) ? 0 : 1;

  bool found = false;
  int pos = LeafLowerBound(page, key, &found);
  if (found) {
    RemoveCellAt(page, pos, LeafCellSize(page, pos));
    *replaced = true;
  }

  size_t need = cell.size() + 2;  // cell + slot
  if (FreeSpace(page) < need && FragBytes(page) > 0) CompactLeaf(page);
  if (FreeSpace(page) >= need) {
    InsertLeafCellAt(page, pos, cell);
    page->dirty = true;
    return Status::OK();
  }

  // Split: gather all cells plus the new one in key order, redistribute by
  // cumulative size.
  std::vector<LeafCellImage> cells;
  uint16_t n = NumCells(page);
  cells.reserve(n + 1u);
  for (int i = 0; i < n; ++i) cells.push_back(ReadLeafCell(page, i));
  cells.insert(cells.begin() + pos, cell);

  size_t total = 0;
  for (const auto& c : cells) total += c.size() + 2;
  size_t left_budget = total / 2;

  PageGuard right_guard = pager_->NewPage();
  Page* right = right_guard.get();
  InitNodePage(right, kLeafPage);
  uint32_t old_next = Link(page);
  InitNodePage(page, kLeafPage);
  SetLink(page, right->id);
  SetLink(right, old_next);

  size_t acc = 0;
  size_t split_at = cells.size();
  for (size_t i = 0; i < cells.size(); ++i) {
    acc += cells[i].size() + 2;
    if (acc > left_budget && i + 1 < cells.size()) {
      split_at = i + 1;
      break;
    }
  }
  if (split_at == cells.size()) split_at = cells.size() / 2;
  if (split_at == 0) split_at = 1;

  for (size_t i = 0; i < split_at; ++i) AppendLeafCell(page, cells[i]);
  for (size_t i = split_at; i < cells.size(); ++i) {
    AppendLeafCell(right, cells[i]);
  }
  page->dirty = true;
  right->dirty = true;
  *split = SplitResult{cells[split_at].key, right->id};
  return Status::OK();
}

Status BTree::InsertIntoInternal(Page* page, const SplitResult& child_split,
                                 std::optional<SplitResult>* split) {
  InternalCellImage cell{child_split.separator, child_split.right};

  // Position: first separator > new key.
  int n = NumCells(page);
  int pos = 0;
  {
    int lo = 0;
    int hi = n;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (InternalCellKey(page, mid) <= child_split.separator) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pos = lo;
  }

  size_t need = cell.size() + 2;
  if (FreeSpace(page) < need && FragBytes(page) > 0) CompactInternal(page);
  if (FreeSpace(page) >= need) {
    InsertInternalCellAt(page, pos, cell);
    page->dirty = true;
    return Status::OK();
  }

  // Split the internal node; the middle separator moves up.
  std::vector<InternalCellImage> cells;
  cells.reserve(static_cast<size_t>(n) + 1u);
  for (int i = 0; i < n; ++i) cells.push_back(ReadInternalCell(page, i));
  cells.insert(cells.begin() + pos, cell);

  size_t mid = cells.size() / 2;
  InternalCellImage promoted = cells[mid];

  PageGuard right_guard = pager_->NewPage();
  Page* right = right_guard.get();
  InitNodePage(right, kInternalPage);
  SetLink(right, promoted.child);

  uint32_t leftmost = Link(page);
  InitNodePage(page, kInternalPage);
  SetLink(page, leftmost);

  for (size_t i = 0; i < mid; ++i) AppendInternalCell(page, cells[i]);
  for (size_t i = mid + 1; i < cells.size(); ++i) {
    AppendInternalCell(right, cells[i]);
  }
  page->dirty = true;
  right->dirty = true;
  *split = SplitResult{promoted.key, right->id};
  return Status::OK();
}

StatusOr<std::string> BTree::Get(std::string_view key) const {
  ReaderMutexLock lock(&mu_);
  PageGuard leaf_guard = FindLeaf(key);
  if (!leaf_guard.valid()) {
    return Status::IoError("get: unreadable or corrupt page on descent");
  }
  Page* leaf = leaf_guard.get();
  bool found = false;
  int pos = LeafLowerBound(leaf, key, &found);
  if (!found) return Status::NotFound(std::string(key));
  uint8_t flags = LeafCellFlags(leaf, pos);
  uint32_t val_len = LeafCellValueLength(leaf, pos);
  const char* payload = LeafCellPayload(leaf, pos);
  if (flags == 0) return std::string(payload, val_len);
  // Follow the overflow chain. The declared length is untrusted: reserve
  // only what the file could actually deliver, or a hostile val_len would
  // drive a multi-GB allocation before the first chain read fails.
  std::string out;
  out.reserve(std::min<uint64_t>(
      val_len,
      static_cast<uint64_t>(pager_->page_count()) * kOverflowCapacity));
  PageId ovf = GetFixed32(payload);
  leaf_guard.Release();
  // Hop cap: a chain that visits more pages than the file holds is cyclic
  // (and a zero-`used` cycle would otherwise never grow out.size()).
  const uint64_t max_hops = static_cast<uint64_t>(pager_->page_count()) + 1;
  uint64_t hops = 0;
  while (ovf != kInvalidPageId && out.size() < val_len) {
    if (++hops > max_hops) {
      return Status::Corruption("overflow chain cycle");
    }
    PageGuard p = pager_->Fetch(ovf);
    Metrics().overflow_follows->Increment();
    if (!p.valid() || !ValidOverflowPage(p.get())) {
      return Status::Corruption("broken overflow chain");
    }
    size_t used = ContentOffset(p.get());
    out.append(p->data + kHeaderSize, used);
    ovf = Link(p.get());
  }
  if (out.size() != val_len) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return out;
}

Status BTree::Delete(std::string_view key) {
  WriterMutexLock lock(&mu_);
  PageGuard leaf_guard = FindLeaf(key);
  if (!leaf_guard.valid()) {
    return Status::IoError("delete: unreadable or corrupt page on descent");
  }
  Page* leaf = leaf_guard.get();
  bool found = false;
  int pos = LeafLowerBound(leaf, key, &found);
  if (!found) return Status::NotFound(std::string(key));
  RemoveCellAt(leaf, pos, LeafCellSize(leaf, pos));
  leaf->dirty = true;
  leaf_guard.Release();
  --size_;
  WriteMeta();
  return Status::OK();
}

namespace {

struct VerifyState {
  uint64_t keys = 0;
  PageId expected_next_leaf = kInvalidPageId;  // set while walking leaves
  std::vector<PageId> leaves_in_order;
};

}  // namespace

// Recursive bound-checked walk. `low`/`high` are exclusive bounds ("" = no
// bound).
static Status VerifyNode(Pager* pager, PageId id, const std::string& low,
                         const std::string& high, VerifyState* state,
                         int depth) {
  if (depth >= kMaxDescentDepth) {
    return Status::Corruption("verify: tree deeper than any valid file "
                              "(page cycle)");
  }
  PageGuard guard = pager->Fetch(id);
  if (!guard.valid()) {
    return Status::Corruption("verify: dangling page " + std::to_string(id));
  }
  Page* p = guard.get();
  if (!ValidNodePage(p)) {
    return Status::Corruption("verify: invalid node page " +
                              std::to_string(id));
  }
  uint8_t type = PageType(p);
  uint16_t n = NumCells(p);
  if (type == kLeafPage) {
    std::string prev;
    for (int i = 0; i < n; ++i) {
      std::string key(LeafCellKey(p, i));
      if (i > 0 && !(prev < key)) {
        return Status::Corruption("verify: leaf keys out of order in page " +
                                  std::to_string(id));
      }
      if (!low.empty() && key < low) {
        return Status::Corruption("verify: leaf key below separator");
      }
      if (!high.empty() && !(key < high)) {
        return Status::Corruption("verify: leaf key above separator");
      }
      prev = std::move(key);
    }
    state->keys += n;
    state->leaves_in_order.push_back(id);
    return Status::OK();
  }
  if (type != kInternalPage) {
    return Status::Corruption("verify: unexpected page type " +
                              std::to_string(type));
  }
  std::string child_low = low;
  for (int i = 0; i <= n; ++i) {
    std::string child_high =
        (i < n) ? std::string(InternalCellKey(p, i)) : high;
    if (i < n && !child_high.empty() && !low.empty() && child_high < low) {
      return Status::Corruption("verify: separator below lower bound");
    }
    PageId child = (i == 0) ? Link(p) : InternalCellChild(p, i - 1);
    XREFINE_RETURN_IF_ERROR(
        VerifyNode(pager, child, child_low, child_high, state, depth + 1));
    child_low = child_high;
  }
  return Status::OK();
}

Status BTree::VerifyIntegrity() const {
  ReaderMutexLock lock(&mu_);
  VerifyState state;
  XREFINE_RETURN_IF_ERROR(VerifyNode(pager_, root_, "", "", &state, 0));
  if (state.keys != size_) {
    return Status::Corruption("verify: key count " +
                              std::to_string(state.keys) +
                              " != recorded size " + std::to_string(size_));
  }
  // The leaf chain must link the leaves exactly in DFS order.
  for (size_t i = 0; i < state.leaves_in_order.size(); ++i) {
    PageGuard leaf_guard = pager_->Fetch(state.leaves_in_order[i]);
    if (!leaf_guard.valid()) {
      return Status::Corruption("verify: unreadable leaf");
    }
    PageId next = Link(leaf_guard.get());
    PageId expected = (i + 1 < state.leaves_in_order.size())
                          ? state.leaves_in_order[i + 1]
                          : kInvalidPageId;
    if (next != expected) {
      return Status::Corruption("verify: broken leaf chain at page " +
                                std::to_string(state.leaves_in_order[i]));
    }
  }
  return Status::OK();
}

// --- Cursor -----------------------------------------------------------------

void BTree::Cursor::Seek(std::string_view key) {
  // Descend to the leftmost leaf when the key is empty, otherwise to the
  // candidate leaf, holding a pin only on the current level. The shared
  // side of the tree latch covers the whole descent (root_ read +
  // structural walk) without blocking other readers; the cursor then rests
  // on a pinned leaf, which needs no latch.
  status_ = Status::OK();
  ReaderMutexLock lock(&tree_->mu_);
  PageGuard p = tree_->pager_->Fetch(tree_->root_);
  Metrics().node_reads->Increment();
  int depth = 0;
  while (p.valid() && ValidNodePage(p.get()) &&
         PageType(p.get()) != kLeafPage) {
    if (++depth >= kMaxDescentDepth) {
      p = PageGuard();  // page cycle in a corrupt file
      break;
    }
    PageId next = key.empty() ? Link(p.get()) : InternalChildFor(p.get(), key);
    p = tree_->pager_->Fetch(next);
    Metrics().node_reads->Increment();
  }
  if (p.valid() && !ValidNodePage(p.get())) p = PageGuard();
  if (!p.valid()) {
    status_ =
        Status::IoError("cursor seek: unreadable or corrupt page on descent");
  }
  leaf_ = std::move(p);
  if (!leaf_.valid()) return;
  if (key.empty()) {
    index_ = 0;
  } else {
    bool found = false;
    index_ = LeafLowerBound(leaf_.get(), key, &found);
  }
  SkipEmptyLeaves();
}

void BTree::Cursor::SkipEmptyLeaves() {
  // A leaf chain longer than the file's page count is a cycle of (empty)
  // leaves in a corrupt file; without the cap this loop would never exit.
  const uint64_t max_hops =
      static_cast<uint64_t>(tree_->pager_->page_count()) + 1;
  uint64_t hops = 0;
  while (leaf_.valid()) {
    if (index_ < NumCells(leaf_.get())) return;
    PageId next = Link(leaf_.get());
    if (next == kInvalidPageId) {
      leaf_ = PageGuard();  // genuinely past the last key: status stays OK
      return;
    }
    if (++hops > max_hops) {
      leaf_ = PageGuard();
      if (status_.ok()) {
        status_ = Status::Corruption("cursor: leaf chain cycle");
      }
      return;
    }
    leaf_ = tree_->pager_->Fetch(next);
    if (leaf_.valid() && (!ValidNodePage(leaf_.get()) ||
                          PageType(leaf_.get()) != kLeafPage)) {
      leaf_ = PageGuard();
      if (status_.ok()) {
        status_ = Status::Corruption("cursor: leaf chain links a non-leaf "
                                     "page " + std::to_string(next));
      }
      return;
    }
    if (!leaf_.valid() && status_.ok()) {
      status_ = Status::IoError("cursor: unreadable leaf page " +
                                std::to_string(next));
    }
    index_ = 0;
  }
}

bool BTree::Cursor::Valid() const { return leaf_.valid(); }

void BTree::Cursor::Next() {
  if (!Valid()) return;
  Metrics().cursor_steps->Increment();
  ++index_;
  SkipEmptyLeaves();
}

std::string_view BTree::Cursor::key() const {
  return LeafCellKey(leaf_.get(), index_);
}

std::string BTree::Cursor::value() const {
  return value_prefix(std::numeric_limits<size_t>::max());
}

std::string BTree::Cursor::value_prefix(size_t max_bytes) const {
  Page* p = leaf_.get();
  uint8_t flags = LeafCellFlags(p, index_);
  uint32_t val_len = LeafCellValueLength(p, index_);
  const char* payload = LeafCellPayload(p, index_);
  size_t want = std::min<size_t>(val_len, max_bytes);
  if (flags == 0) return std::string(payload, want);
  // Same cycle cap and untrusted-length reserve clamp as BTree::Get's
  // overflow walk.
  const uint64_t max_hops =
      static_cast<uint64_t>(tree_->pager_->page_count()) + 1;
  std::string out;
  out.reserve(std::min<uint64_t>(want, max_hops * kOverflowCapacity));
  PageId ovf = GetFixed32(payload);
  uint64_t hops = 0;
  while (ovf != kInvalidPageId && out.size() < want) {
    PageGuard op = tree_->pager_->Fetch(ovf);
    Metrics().overflow_follows->Increment();
    if (++hops > max_hops || !op.valid() || !ValidOverflowPage(op.get())) {
      if (status_.ok()) {
        status_ = Status::Corruption("cursor value: broken overflow chain");
      }
      return std::string();
    }
    out.append(op->data + kHeaderSize, ContentOffset(op.get()));
    ovf = Link(op.get());
  }
  if (out.size() < want) {
    if (status_.ok()) {
      status_ = Status::Corruption(
          "cursor value: overflow chain shorter than the recorded length");
    }
    return std::string();
  }
  out.resize(want);
  return out;
}

}  // namespace xrefine::storage
