# Empty compiler generated dependencies file for bench_fig4_sample_queries.
# This may be replaced when dependencies are built.
