#include "index/index_builder.h"

#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"

namespace xrefine::index {

namespace {

// Cache of the root-to-type chain per type, indexed by depth-1, so the
// per-posting ancestor walks are O(depth) instead of O(depth^2).
class TypeChainCache {
 public:
  explicit TypeChainCache(const xml::NodeTypeTable& types) : types_(types) {}

  const std::vector<xml::TypeId>& ChainOf(xml::TypeId type) {
    auto it = chains_.find(type);
    if (it != chains_.end()) return it->second;
    std::vector<xml::TypeId> chain(types_.depth(type));
    xml::TypeId cur = type;
    for (size_t i = chain.size(); i > 0; --i) {
      chain[i - 1] = cur;
      cur = types_.parent(cur);
    }
    return chains_.emplace(type, std::move(chain)).first->second;
  }

 private:
  const xml::NodeTypeTable& types_;
  std::unordered_map<xml::TypeId, std::vector<xml::TypeId>> chains_;
};

}  // namespace

std::unique_ptr<IndexedCorpus> BuildIndex(const xml::Document& doc,
                                          const IndexBuildOptions& options) {
  auto corpus = std::make_unique<IndexedCorpus>();
  corpus->mutable_types() = doc.types();
  corpus->set_document(&doc);
  InvertedIndex& index = corpus->mutable_index();
  StatisticsTable& stats = corpus->mutable_stats();
  TypeChainCache chains(corpus->types());

  if (!doc.has_root()) return corpus;

  // Pass 1: preorder walk in document order. Emits one posting per
  // (keyword, node) and accumulates tf along each node's ancestor types.
  std::vector<xml::NodeId> stack = {doc.root()};
  std::unordered_map<std::string, uint32_t> counts;
  while (!stack.empty()) {
    xml::NodeId id = stack.back();
    stack.pop_back();
    const auto& node = doc.node(id);
    stats.AddNodeOfType(node.type);

    counts.clear();
    if (options.index_tags) {
      for (const auto& term : text::Tokenize(doc.tag(id))) ++counts[term];
    }
    for (const auto& term : text::Tokenize(node.text)) ++counts[term];

    const auto& chain = chains.ChainOf(node.type);
    for (const auto& [term, count] : counts) {
      index.Append(term, Posting{node.dewey, node.type});
      for (xml::TypeId ancestor : chain) {
        stats.AddTermFrequency(term, ancestor, count);
      }
    }

    // Push children reversed so the leftmost is processed first.
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }

  // Pass 2: document frequencies. Postings of each keyword are in document
  // order, so equal ancestor labels are contiguous: one last-seen label per
  // depth dedupes T-typed subtrees.
  for (const auto& [keyword, list] : index.lists()) {
    std::vector<xml::Dewey> last_seen;  // indexed by depth-1
    for (const Posting& p : list) {
      const auto& chain = chains.ChainOf(p.type);
      if (last_seen.size() < chain.size()) last_seen.resize(chain.size());
      for (size_t d = 0; d < chain.size(); ++d) {
        xml::Dewey anchor = p.dewey.Prefix(d + 1);
        if (last_seen[d] != anchor) {
          stats.AddDocumentFrequency(keyword, chain[d]);
          last_seen[d] = std::move(anchor);
        }
      }
    }
  }

  stats.FinalizeDistinctCounts();
  return corpus;
}

}  // namespace xrefine::index
