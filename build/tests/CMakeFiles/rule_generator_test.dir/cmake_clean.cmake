file(REMOVE_RECURSE
  "CMakeFiles/rule_generator_test.dir/rule_generator_test.cc.o"
  "CMakeFiles/rule_generator_test.dir/rule_generator_test.cc.o.d"
  "rule_generator_test"
  "rule_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
