// End-to-end tests for the refinement daemon: wire protocol over real
// loopback sockets, admission control (reject / degrade / shed), deadline
// and cancellation plumbing, and the robustness contract — abrupt client
// disconnects must never kill the server (the SIGPIPE/EPIPE regression:
// these tests run the server in-process, so an unhandled SIGPIPE would
// kill the test binary itself).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/xrefine.h"
#include "index/index_builder.h"
#include "index/index_store.h"
#include "index/store_index_source.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/server.h"
#include "storage/kvstore.h"
#include "text/tokenizer.h"
#include "workload/dblp_generator.h"

namespace xrefine::server {
namespace {

using RefineResult = Client::RefineResult;

/// Shared corpus + engines for every test (construction dominates test
/// time; the corpus is immutable and the engines' query paths are
/// thread-safe, so sharing across servers is the production shape too).
struct TestEnv {
  xml::Document doc;
  std::unique_ptr<index::IndexedCorpus> corpus;
  text::Lexicon lexicon = text::Lexicon::BuiltIn();
  std::unique_ptr<core::XRefine> primary;
  std::unique_ptr<core::XRefine> degraded;
  std::string well_behaved_query;  // two low-volume real terms
  std::string heavy_query;         // the highest-volume terms
  uint64_t well_behaved_volume = 0;
  uint64_t heavy_volume = 0;

  TestEnv() {
    workload::DblpOptions options;
    options.num_authors = 120;
    options.seed = 99;
    doc = workload::GenerateDblp(options);
    corpus = index::BuildIndex(doc);
    core::XRefineOptions engine_options;
    primary = std::make_unique<core::XRefine>(corpus.get(), &lexicon,
                                              engine_options);
    degraded = std::make_unique<core::XRefine>(
        corpus.get(), &lexicon, MakeDegradedOptions(engine_options));

    std::vector<std::pair<size_t, std::string>> by_volume;
    corpus->ForEachKeyword([&](std::string_view kw) {
      if (kw.size() >= 4) by_volume.emplace_back(corpus->ListSize(kw),
                                                 std::string(kw));
    });
    std::sort(by_volume.begin(), by_volume.end());
    // Two terms from the low end (but present), and the top three.
    const auto& lo1 = by_volume[by_volume.size() / 10];
    const auto& lo2 = by_volume[by_volume.size() / 10 + 1];
    well_behaved_query = lo1.second + " " + lo2.second;
    well_behaved_volume = lo1.first + lo2.first;
    std::string heavy;
    for (size_t i = 0; i < 3; ++i) {
      const auto& top = by_volume[by_volume.size() - 1 - i];
      if (!heavy.empty()) heavy.push_back(' ');
      heavy += top.second;
      heavy_volume += top.first;
    }
    heavy_query = heavy;
    // The thresholds the admission tests pick between these two classes
    // only exist if the classes are actually separable.
    EXPECT_LT(well_behaved_volume * 2, heavy_volume);
  }
};

TestEnv& Env() {
  static TestEnv* env = new TestEnv();
  return *env;
}

std::unique_ptr<Server> StartServer(ServerOptions options) {
  auto server = std::make_unique<Server>(Env().primary.get(),
                                         Env().degraded.get(), options);
  Status st = server->Start();
  EXPECT_TRUE(st.ok()) << st;
  return server;
}

Client ConnectTo(const Server& server) {
  Client client;
  Status st = client.Connect("127.0.0.1", server.port());
  EXPECT_TRUE(st.ok()) << st;
  return client;
}

/// Raw socket for protocol-level tests (pipelining, garbage, half-frames).
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void RawSend(int fd, const std::string& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t w =
        ::send(fd, bytes.data() + done, bytes.size() - done, MSG_NOSIGNAL);
    ASSERT_GT(w, 0);
    done += static_cast<size_t>(w);
  }
}

bool RawReadFrame(int fd, FrameHeader* header, std::string* payload) {
  char header_bytes[kFrameHeaderSize];
  size_t done = 0;
  while (done < kFrameHeaderSize) {
    ssize_t r = ::recv(fd, header_bytes + done, kFrameHeaderSize - done, 0);
    if (r <= 0) return false;
    done += static_cast<size_t>(r);
  }
  if (!DecodeFrameHeader(std::string_view(header_bytes, kFrameHeaderSize),
                         header)
           .ok()) {
    return false;
  }
  payload->resize(header->payload_len);
  done = 0;
  while (done < payload->size()) {
    ssize_t r = ::recv(fd, payload->data() + done, payload->size() - done, 0);
    if (r <= 0) return false;
    done += static_cast<size_t>(r);
  }
  return true;
}

TEST(ServerTest, PingStatsAndCleanShutdown) {
  auto server = StartServer({});
  ASSERT_NE(server->port(), 0);
  Client client = ConnectTo(*server);
  EXPECT_TRUE(client.Ping().ok());
  std::string json;
  ASSERT_TRUE(client.StatsJson(&json).ok());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("server.requests"), std::string::npos);
  client.Close();
  server->Stop();
}

TEST(ServerTest, RefineMatchesDirectEngineRun) {
  auto server = StartServer({});
  Client client = ConnectTo(*server);

  RefineResult result;
  ASSERT_TRUE(client.Refine(Env().well_behaved_query, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kRefined);
  EXPECT_FALSE(result.response.degraded);

  core::RefineOutcome direct =
      Env().primary->Run(text::TokenizeQuery(Env().well_behaved_query));
  EXPECT_EQ(result.response.needs_refinement, direct.needs_refinement);
  ASSERT_EQ(result.response.refined.size(), direct.refined.size());
  for (size_t i = 0; i < direct.refined.size(); ++i) {
    EXPECT_EQ(text::TokenizeQuery(result.response.refined[i].query),
              direct.refined[i].rq.keywords);
    EXPECT_EQ(result.response.refined[i].result_count,
              direct.refined[i].results.size());
    EXPECT_DOUBLE_EQ(result.response.refined[i].score,
                     direct.refined[i].rank);
  }
  server->Stop();
}

TEST(ServerTest, EmptyQueryIsInvalidArgument) {
  auto server = StartServer({});
  Client client = ConnectTo(*server);
  RefineResult result;
  ASSERT_TRUE(client.Refine("  \t ", 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kError);
  EXPECT_TRUE(result.error.IsInvalidArgument());
  server->Stop();
}

TEST(ServerTest, AdmissionRejectsTermCountMonster) {
  auto server = StartServer({});
  Client client = ConnectTo(*server);
  std::string monster;
  for (int i = 0; i < 20; ++i) monster += "term" + std::to_string(i) + " ";
  RefineResult result;
  ASSERT_TRUE(client.Refine(monster, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kError);
  EXPECT_TRUE(result.error.IsUnavailable());
  EXPECT_NE(result.error.message().find("terms"), std::string::npos);
  server->Stop();
}

TEST(ServerTest, AdmissionRejectsHeavyListVolume) {
  ServerOptions options;
  // Reject cap between the two classes: well-behaved sails through, the
  // heavy query is refused before any engine work.
  options.admission.reject_list_volume = Env().well_behaved_volume * 2;
  options.admission.degrade_list_volume = Env().well_behaved_volume * 2;
  auto server = StartServer(options);
  Client client = ConnectTo(*server);

  RefineResult result;
  ASSERT_TRUE(client.Refine(Env().heavy_query, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kError);
  EXPECT_TRUE(result.error.IsUnavailable());
  EXPECT_NE(result.error.message().find("list volume"), std::string::npos);

  ASSERT_TRUE(client.Refine(Env().well_behaved_query, 0, &result).ok());
  EXPECT_EQ(result.kind, RefineResult::Kind::kRefined);
  server->Stop();
}

TEST(ServerTest, AdmissionDegradesMidVolumeQueries) {
  ServerOptions options;
  options.admission.degrade_list_volume = Env().well_behaved_volume * 2;
  // Reject stays far above, so the heavy query lands in the degrade band.
  options.admission.reject_list_volume = Env().heavy_volume * 100;
  auto server = StartServer(options);
  Client client = ConnectTo(*server);

  RefineResult result;
  ASSERT_TRUE(client.Refine(Env().heavy_query, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kRefined);
  EXPECT_TRUE(result.response.degraded);

  ASSERT_TRUE(client.Refine(Env().well_behaved_query, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kRefined);
  EXPECT_FALSE(result.response.degraded);
  server->Stop();
}

TEST(ServerTest, ShedsPastQueueHighWater) {
  ServerOptions options;
  // High water at zero occupancy: every request sheds — the deterministic
  // way to pin the RETRY_AFTER path without racing real queue pressure.
  options.admission.queue_high_water = 0.0;
  options.retry_after_ms = 75;
  auto server = StartServer(options);
  Client client = ConnectTo(*server);

  RefineResult result;
  ASSERT_TRUE(client.Refine(Env().well_behaved_query, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kRetryAfter);
  EXPECT_EQ(result.retry_after.retry_after_ms, 75u);
  server->Stop();
}

TEST(ServerTest, FanoutCapAbortsAfterPrepare) {
  ServerOptions options;
  options.max_candidate_fanout = 1;  // any real rule set is larger
  auto server = StartServer(options);
  Client client = ConnectTo(*server);

  // Misspell both terms so each generates its own spelling rules: the
  // prepared fan-out then blows the cap of 1 and the post-prepare gate
  // refuses before scanning.
  std::string misspelled;
  for (const std::string& term :
       text::TokenizeQuery(Env().well_behaved_query)) {
    std::string t = term;
    t.back() = t.back() == 'x' ? 'y' : 'x';
    if (!misspelled.empty()) misspelled.push_back(' ');
    misspelled += t;
  }
  RefineResult result;
  ASSERT_TRUE(client.Refine(misspelled, 0, &result).ok());
  ASSERT_EQ(result.kind, RefineResult::Kind::kError);
  EXPECT_TRUE(result.error.IsUnavailable());
  EXPECT_NE(result.error.message().find("fan-out"), std::string::npos);
  server->Stop();
}

TEST(ServerTest, QueuedWorkHonoursDeadlines) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 128;
  options.admission.queue_high_water = 1.0;  // fill the whole queue
  auto server = StartServer(options);

  // Pipeline many 1ms-deadline requests down one raw connection. The
  // single worker drains them serially, so by the time it reaches the
  // later requests their deadlines have long passed: the engine's
  // pre-prepare deadline check must answer kDeadlineExceeded instead of
  // wasting worker time on dead queries.
  int fd = RawConnect(server->port());
  constexpr int kRequests = 50;
  RefineRequest request;
  request.deadline_ms = 1;
  request.query = Env().heavy_query;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += EncodeRefineRequestFrame(static_cast<uint64_t>(i + 1), request);
  }
  RawSend(fd, burst);

  int refined = 0, deadline_exceeded = 0, shed = 0, other = 0;
  for (int i = 0; i < kRequests; ++i) {
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(RawReadFrame(fd, &header, &payload)) << "response " << i;
    if (header.type == FrameType::kRefineResponse) {
      ++refined;
    } else if (header.type == FrameType::kError) {
      Status decoded = Status::OK();
      ASSERT_TRUE(DecodeError(payload, &decoded).ok());
      if (decoded.IsDeadlineExceeded()) {
        ++deadline_exceeded;
      } else {
        ++other;
      }
    } else if (header.type == FrameType::kRetryAfter) {
      ++shed;
    } else {
      ++other;
    }
  }
  ::close(fd);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(refined + deadline_exceeded + shed, kRequests);
  // 50 heavy queries cannot all finish inside 1ms of their own accept
  // times through one worker.
  EXPECT_GT(deadline_exceeded, 0);
  server->Stop();
}

TEST(ServerTest, SurvivesAbruptDisconnectMidRequest) {
  auto server = StartServer({});

  // Send a full valid request and slam the connection shut before the
  // response: the worker's send hits EPIPE/ECONNRESET. An unhandled
  // SIGPIPE would kill this very test process.
  {
    int fd = RawConnect(server->port());
    RefineRequest request;
    request.query = Env().heavy_query;
    RawSend(fd, EncodeRefineRequestFrame(1, request));
    ::close(fd);
  }
  // Half a header, then gone.
  {
    int fd = RawConnect(server->port());
    std::string frame = EncodeRefineRequestFrame(
        2, RefineRequest{0, Env().well_behaved_query});
    RawSend(fd, frame.substr(0, kFrameHeaderSize / 2));
    ::close(fd);
  }
  // Garbage bytes: the reader answers with an error frame (or just drops
  // the session) and must not take the server down with it.
  {
    int fd = RawConnect(server->port());
    RawSend(fd, std::string(64, '\xFF'));
    ::close(fd);
  }

  // Give the teardowns a moment, then prove the server still serves.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client client = ConnectTo(*server);
  RefineResult result;
  ASSERT_TRUE(client.Refine(Env().well_behaved_query, 0, &result).ok());
  EXPECT_EQ(result.kind, RefineResult::Kind::kRefined);
  server->Stop();
}

TEST(ServerTest, ServesStoreBackedSourceConcurrently) {
  // The production boot shape: one StoreBackedIndexSource shared by every
  // worker through both engines, posting lists faulted in through the
  // pager under concurrent load.
  std::string path = ::testing::TempDir() + "/server_store_test.xrdb";
  std::remove(path.c_str());
  {
    auto store_or = storage::KVStore::Open(path);
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE(index::SaveCorpus(*Env().corpus, store_or.value().get()).ok());
  }
  auto store_or = storage::KVStore::Open(path);
  ASSERT_TRUE(store_or.ok());
  auto source_or =
      index::StoreBackedIndexSource::Open(store_or.value().get(), {});
  ASSERT_TRUE(source_or.ok());
  auto source = std::move(source_or).value();

  core::XRefineOptions engine_options;
  core::XRefine primary(source.get(), &Env().lexicon, engine_options);
  core::XRefine degraded(source.get(), &Env().lexicon,
                         MakeDegradedOptions(engine_options));
  ServerOptions options;
  options.num_workers = 4;
  Server server(&primary, &degraded, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      for (int i = 0; i < kPerThread; ++i) {
        RefineResult result;
        if (client.Refine(Env().well_behaved_query, 0, &result).ok() &&
            result.kind == RefineResult::Kind::kRefined) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  server.Stop();
  std::remove(path.c_str());
}

// Semantic payload equality for pipelined-vs-serial cross-checks: per-stage
// timings legitimately differ between runs, everything else must not.
void ExpectSameRefinement(const RefineResponse& got,
                          const RefineResponse& want) {
  EXPECT_EQ(got.needs_refinement, want.needs_refinement);
  ASSERT_EQ(got.refined.size(), want.refined.size());
  for (size_t i = 0; i < want.refined.size(); ++i) {
    EXPECT_EQ(got.refined[i].query, want.refined[i].query);
    EXPECT_EQ(got.refined[i].result_count, want.refined[i].result_count);
    EXPECT_DOUBLE_EQ(got.refined[i].score, want.refined[i].score);
  }
}

TEST(ServerTest, PipelinedResponsesCorrelateOutOfOrder) {
  // Four workers draining a mix of heavy and light queries complete in
  // shuffled order; the request ids carry the correlation. Every id must be
  // answered exactly once and carry the same refinement the query gets on
  // a serial connection.
  ServerOptions options;
  options.num_workers = 4;
  auto server = StartServer(options);

  // Serial references, one per distinct query.
  Client serial = ConnectTo(*server);
  RefineResult light_ref, heavy_ref;
  ASSERT_TRUE(serial.Refine(Env().well_behaved_query, 0, &light_ref).ok());
  ASSERT_EQ(light_ref.kind, RefineResult::Kind::kRefined);
  ASSERT_TRUE(serial.Refine(Env().heavy_query, 0, &heavy_ref).ok());
  ASSERT_EQ(heavy_ref.kind, RefineResult::Kind::kRefined);

  Client pipelined = ConnectTo(*server);
  pipelined.set_pipeline_depth(16);
  constexpr int kRequests = 12;
  std::map<uint64_t, bool> is_heavy;  // id -> which reference to check
  for (int i = 0; i < kRequests; ++i) {
    // Heavy first: their answers tend to land AFTER the light queries sent
    // behind them, which is the out-of-order shape under test.
    bool heavy = i < kRequests / 2;
    uint64_t id = 0;
    ASSERT_TRUE(pipelined
                    .SendNowait(heavy ? Env().heavy_query
                                      : Env().well_behaved_query,
                                0, &id)
                    .ok());
    ASSERT_TRUE(is_heavy.emplace(id, heavy).second);
  }
  EXPECT_EQ(pipelined.pending(), static_cast<size_t>(kRequests));

  std::vector<uint64_t> completion_order;
  while (pipelined.pending() > 0) {
    Client::PipelinedResult got;
    ASSERT_TRUE(pipelined.Poll(&got).ok());
    auto it = is_heavy.find(got.request_id);
    ASSERT_NE(it, is_heavy.end()) << "duplicate or unknown id";
    ASSERT_EQ(got.result.kind, RefineResult::Kind::kRefined);
    ExpectSameRefinement(got.result.response,
                         it->second ? heavy_ref.response : light_ref.response);
    completion_order.push_back(got.request_id);
    is_heavy.erase(it);
  }
  EXPECT_TRUE(is_heavy.empty());  // every id answered exactly once
  EXPECT_EQ(completion_order.size(), static_cast<size_t>(kRequests));
  // Drained pipeline: serial calls are legal again on the same connection.
  EXPECT_TRUE(pipelined.Ping().ok());
  server->Stop();
}

TEST(ServerTest, PerSessionInflightCapShedsBeforeGlobalQueue) {
  // One worker, global queue far from full, per-session cap of 2: a
  // pipelined burst of 6 heavy queries from one connection must see some
  // RETRY_AFTER sheds — the fairness gate fires on the session's own
  // in-flight count even though the global queue has plenty of room.
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 128;
  options.max_inflight_per_session = 2;
  options.retry_after_ms = 33;
  auto server = StartServer(options);
  Client client = ConnectTo(*server);
  client.set_pipeline_depth(8);

  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.SendNowait(Env().heavy_query, 0, nullptr).ok());
  }
  int refined = 0, shed = 0, other = 0;
  while (client.pending() > 0) {
    Client::PipelinedResult got;
    ASSERT_TRUE(client.Poll(&got).ok());
    switch (got.result.kind) {
      case RefineResult::Kind::kRefined:
        ++refined;
        break;
      case RefineResult::Kind::kRetryAfter:
        EXPECT_EQ(got.result.retry_after.retry_after_ms, 33u);
        ++shed;
        break;
      default:
        ++other;
    }
  }
  EXPECT_EQ(other, 0);
  EXPECT_EQ(refined + shed, kBurst);
  // The cap admits at most 2 at once; a burst of 6 sent back-to-back down
  // one loopback stream cannot all fit.
  EXPECT_GT(shed, 0);
  EXPECT_GE(refined, 1);

  std::string json;
  ASSERT_TRUE(client.StatsJson(&json).ok());
  EXPECT_NE(json.find("server.session_capped"), std::string::npos);
  server->Stop();
}

TEST(ServerTest, RecvDeadlineFiresOnSilentServer) {
  // A listener that accepts (via the kernel backlog) but never answers: the
  // pre-fix client blocked in recv() forever here. With a receive deadline
  // the stall surfaces as kDeadlineExceeded in bounded time.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len),
            0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  client.set_recv_timeout_ms(200);

  auto start = std::chrono::steady_clock::now();
  RefineResult result;
  Status st = client.Refine("anything at all", 0, &result);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st;
  EXPECT_GE(elapsed.count(), 190);
  EXPECT_LT(elapsed.count(), 5000);

  // Same stall in pipelined mode: Poll honours the deadline too.
  Client pipelined;
  ASSERT_TRUE(pipelined.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  pipelined.set_recv_timeout_ms(100);
  ASSERT_TRUE(pipelined.SendNowait("still nothing", 0, nullptr).ok());
  Client::PipelinedResult got;
  EXPECT_TRUE(pipelined.Poll(&got).IsDeadlineExceeded());
  ::close(listener);
}

TEST(RefineControlTest, PastDeadlineStopsBeforeAnyWork) {
  core::RefineControl control;
  control.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  core::RefineOutcome outcome = Env().primary->Run(
      text::TokenizeQuery(Env().well_behaved_query), &control);
  EXPECT_TRUE(outcome.status.IsDeadlineExceeded());
  EXPECT_TRUE(outcome.refined.empty());
}

TEST(RefineControlTest, CancelFlagStopsTheQuery) {
  std::atomic<bool> cancel{true};
  core::RefineControl control;
  control.cancel = &cancel;
  core::RefineOutcome outcome = Env().primary->Run(
      text::TokenizeQuery(Env().heavy_query), &control);
  EXPECT_TRUE(outcome.status.IsDeadlineExceeded());
  EXPECT_TRUE(outcome.refined.empty());
}

TEST(RefineControlTest, NullControlMatchesPlainRun) {
  core::Query q = text::TokenizeQuery(Env().well_behaved_query);
  core::RefineOutcome with_null = Env().primary->Run(q, nullptr);
  core::RefineOutcome plain = Env().primary->Run(q);
  EXPECT_EQ(with_null.needs_refinement, plain.needs_refinement);
  ASSERT_EQ(with_null.refined.size(), plain.refined.size());
  for (size_t i = 0; i < plain.refined.size(); ++i) {
    EXPECT_EQ(with_null.refined[i].rq.keywords, plain.refined[i].rq.keywords);
  }
}

}  // namespace
}  // namespace xrefine::server
