#include "core/rule_generator.h"

#include <algorithm>
#include <unordered_set>

#include "text/edit_distance.h"
#include "text/porter_stemmer.h"
#include "text/segmenter.h"

namespace xrefine::core {

RuleGenerator::RuleGenerator(const index::IndexSource* source,
                             const text::Lexicon* lexicon,
                             RuleGeneratorOptions options)
    : source_(source), lexicon_(lexicon), options_(options) {
  vocabulary_ = source_->Vocabulary();
  for (const std::string& word : vocabulary_) {
    stem_index_[text::PorterStem(word)].push_back(word);
  }
  segmenter_ = std::make_unique<text::Segmenter>(
      text::Segmenter::Vocabulary(vocabulary_.begin(), vocabulary_.end()));
}

RuleSet RuleGenerator::GenerateFor(const Query& q) const {
  RuleSet rules;
  rules.set_deletion_cost(options_.deletion_cost);
  AddMergeRules(q, &rules);
  AddSplitRules(q, &rules);
  AddSpellingRules(q, &rules);
  AddSynonymRules(q, &rules);
  AddAcronymRules(q, &rules);
  AddStemmingRules(q, &rules);
  return rules;
}

void RuleGenerator::AddMergeRules(const Query& q, RuleSet* rules) const {
  // Adjacent runs q[i..i+a) whose concatenation is a corpus word.
  for (size_t i = 0; i < q.size(); ++i) {
    std::string merged = q[i];
    std::vector<std::string> lhs = {q[i]};
    for (size_t a = 2; a <= options_.max_merge_arity && i + a <= q.size();
         ++a) {
      merged += q[i + a - 1];
      lhs.push_back(q[i + a - 1]);
      if (InCorpus(merged)) {
        rules->Add(RefinementRule{
            lhs,
            {merged},
            RefineOp::kMerging,
            options_.merge_cost_per_space * static_cast<double>(a - 1)});
      }
    }
  }
}

void RuleGenerator::AddSplitRules(const Query& q, RuleSet* rules) const {
  for (const std::string& k : q) {
    std::vector<std::string> pieces = segmenter_->Segment(k);
    if (pieces.size() < 2) continue;
    rules->Add(RefinementRule{
        {k},
        pieces,
        RefineOp::kSplit,
        options_.split_cost_per_space * static_cast<double>(pieces.size() - 1)});
  }
}

void RuleGenerator::AddSpellingRules(const Query& q, RuleSet* rules) const {
  for (const std::string& k : q) {
    if (k.size() < options_.min_spelling_length) continue;
    if (InCorpus(k)) continue;  // spelled correctly for this corpus
    // Candidates: corpus words within the edit-distance band, preferring
    // frequent words (a common IR heuristic for correction quality).
    struct Candidate {
      std::string word;
      int distance;
      size_t frequency;
    };
    std::vector<Candidate> candidates;
    for (const std::string& word : vocabulary_) {
      size_t lk = k.size();
      size_t lw = word.size();
      size_t diff = lk > lw ? lk - lw : lw - lk;
      if (diff > static_cast<size_t>(options_.max_edit_distance)) continue;
      int d = text::EditDistanceAtMost(k, word, options_.max_edit_distance);
      if (d > options_.max_edit_distance || d == 0) continue;
      candidates.push_back(Candidate{word, d, source_->ListSize(word)});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                if (a.frequency != b.frequency) return a.frequency > b.frequency;
                return a.word < b.word;
              });
    size_t limit = std::min(candidates.size(), options_.max_spelling_candidates);
    for (size_t i = 0; i < limit; ++i) {
      rules->Add(RefinementRule{{k},
                                {candidates[i].word},
                                RefineOp::kSubstitution,
                                static_cast<double>(candidates[i].distance)});
    }
  }
}

void RuleGenerator::AddSynonymRules(const Query& q, RuleSet* rules) const {
  for (const std::string& k : q) {
    for (const text::Synonym& syn : lexicon_->SynonymsOf(k)) {
      if (!InCorpus(syn.word)) continue;
      rules->Add(RefinementRule{
          {k}, {syn.word}, RefineOp::kSubstitution, syn.cost});
    }
  }
}

void RuleGenerator::AddAcronymRules(const Query& q, RuleSet* rules) const {
  // Expansion direction: acronym in the query -> its expansion words.
  for (const std::string& k : q) {
    const std::vector<std::string>* expansion = lexicon_->ExpansionOf(k);
    if (expansion == nullptr) continue;
    bool all_present = true;
    for (const std::string& w : *expansion) {
      if (!InCorpus(w)) {
        all_present = false;
        break;
      }
    }
    if (all_present) {
      rules->Add(RefinementRule{
          {k}, *expansion, RefineOp::kSubstitution, options_.acronym_cost});
    }
  }
  // Formation direction: a contiguous run of query terms equal to a known
  // expansion -> the acronym.
  for (size_t i = 0; i < q.size(); ++i) {
    for (size_t len = 2; len <= 4 && i + len <= q.size(); ++len) {
      std::vector<std::string> run(q.begin() + static_cast<ptrdiff_t>(i),
                                   q.begin() + static_cast<ptrdiff_t>(i + len));
      for (const std::string& acronym : lexicon_->AcronymsFor(run)) {
        if (!InCorpus(acronym)) continue;
        rules->Add(RefinementRule{
            run, {acronym}, RefineOp::kSubstitution, options_.acronym_cost});
      }
    }
  }
}

void RuleGenerator::AddStemmingRules(const Query& q, RuleSet* rules) const {
  for (const std::string& k : q) {
    auto it = stem_index_.find(text::PorterStem(k));
    if (it == stem_index_.end()) continue;
    size_t added = 0;
    for (const std::string& variant : it->second) {
      if (variant == k) continue;
      if (added >= options_.max_stemming_candidates) break;
      rules->Add(RefinementRule{
          {k}, {variant}, RefineOp::kSubstitution, options_.stemming_cost});
      ++added;
    }
  }
}

}  // namespace xrefine::core
