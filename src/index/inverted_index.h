// In-memory keyword inverted lists.
#ifndef XREFINE_INDEX_INVERTED_INDEX_H_
#define XREFINE_INDEX_INVERTED_INDEX_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "index/flat_postings.h"
#include "index/posting.h"

namespace xrefine::index {

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Appends a posting; the builder appends in document order, and the
  /// same node is recorded once per keyword (occurrence counts live in the
  /// statistics table).
  void Append(std::string_view keyword, Posting posting);

  /// The posting list for `keyword`, or nullptr when the keyword does not
  /// occur in the corpus.
  const PostingList* Find(std::string_view keyword) const;

  /// The mutable list for `keyword`, created empty when absent. Build-path
  /// only (the DAG index builder resolves each distinct keyword to its list
  /// once per shared subtree, then appends per instance without re-hashing
  /// the keyword); the pointer is stable for the index's lifetime
  /// (unordered_map nodes never move).
  PostingList* MutableList(std::string_view keyword) {
    return &lists_.try_emplace(std::string(keyword)).first->second;
  }

  /// The keyword's list in the columnar serving layout, or nullptr when
  /// absent. Built lazily from the AoS list on first request per keyword
  /// and memoized (unordered_map node stability keeps returned pointers
  /// valid for the index's lifetime). Thread-safe; the builder only
  /// Appends before any serving starts, so a memoized flat list never goes
  /// stale.
  const FlatPostingList* FindFlat(std::string_view keyword) const
      EXCLUDES(flat_mu_);

  bool Contains(std::string_view keyword) const {
    return Find(keyword) != nullptr;
  }

  size_t ListSize(std::string_view keyword) const {
    const PostingList* list = Find(keyword);
    return list == nullptr ? 0 : list->size();
  }

  size_t keyword_count() const { return lists_.size(); }

  /// Invokes `fn` once per distinct keyword, in unspecified order — the
  /// zero-copy enumeration path (consumers sort their own snapshot when
  /// they need order).
  void ForEachKeyword(const std::function<void(std::string_view)>& fn) const {
    for (const auto& [word, unused_list] : lists_) fn(word);
  }

  /// Sorted vocabulary (materialised on demand; used by rule mining).
  std::vector<std::string> Vocabulary() const;

  const std::unordered_map<std::string, PostingList>& lists() const {
    return lists_;
  }

 private:
  std::unordered_map<std::string, PostingList> lists_;
  // Flat mirror of lists_, filled on demand by FindFlat.
  mutable Mutex flat_mu_;
  mutable std::unordered_map<std::string, FlatPostingList> flat_lists_
      GUARDED_BY(flat_mu_);
};

}  // namespace xrefine::index

#endif  // XREFINE_INDEX_INVERTED_INDEX_H_
