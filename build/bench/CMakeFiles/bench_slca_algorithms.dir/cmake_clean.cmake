file(REMOVE_RECURSE
  "CMakeFiles/bench_slca_algorithms.dir/bench_slca_algorithms.cc.o"
  "CMakeFiles/bench_slca_algorithms.dir/bench_slca_algorithms.cc.o.d"
  "bench_slca_algorithms"
  "bench_slca_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slca_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
