// Algorithm 2: partition-based Top-K query refinement. Scans each involved
// inverted list exactly once, partitioned by the document root's children
// (Definition 6.1); per partition it finds the top-2K candidate refined
// queries by dissimilarity (getTopOptimalRQ), maintains a global
// RQSortedList, skips the SLCA work of partitions whose candidates cannot
// enter the top-2K, and finally ranks the survivors with the full model.
// Orthogonal to the SLCA method (Lemma 3); one-time scan (Theorem 2).
#ifndef XREFINE_CORE_PARTITION_REFINE_H_
#define XREFINE_CORE_PARTITION_REFINE_H_

#include "core/refine_common.h"

namespace xrefine::core {

struct PartitionRefineOptions {
  size_t top_k = 3;
  slca::SlcaAlgorithm slca_algorithm = slca::SlcaAlgorithm::kScanEager;
  RankingOptions ranking;
  /// Ablation knob: disable the skip of unpromising partitions.
  bool prune_partitions = true;
  bool rank_results = false;  // TF*IDF-order each RQ's results
  bool infer_return_nodes = false;  // snap results to entity boundaries
};

RefineOutcome PartitionRefine(const index::IndexSource& corpus,
                              const RefineInput& input,
                              const PartitionRefineOptions& options = {});

}  // namespace xrefine::core

#endif  // XREFINE_CORE_PARTITION_REFINE_H_
