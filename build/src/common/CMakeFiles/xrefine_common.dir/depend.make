# Empty dependencies file for xrefine_common.
# This may be replaced when dependencies are built.
