// Failure injection: corrupted page files, truncated records, and garbage
// inputs must surface as Status errors (or clean parse failures), never as
// crashes or silent wrong answers.
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/index_store.h"
#include "storage/btree.h"
#include "storage/kvstore.h"
#include "storage/pager.h"
#include "tests/test_helpers.h"
#include "xml/xml_parser.h"

namespace xrefine {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FailureInjectionTest, BTreeRejectsGarbageMagic) {
  std::string path = TempPath("btree_bad_magic.db");
  // A page-sized file whose metadata page holds a wrong magic.
  std::string bytes(storage::kPageSize, '\0');
  bytes[0] = 'X';
  bytes[1] = 'X';
  bytes[2] = 'X';
  bytes[3] = 'X';
  WriteBytes(path, bytes);
  auto pager = storage::Pager::Open(path);
  ASSERT_TRUE(pager.ok());
  auto tree = storage::BTree::Open(pager.value().get());
  EXPECT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, BTreeRejectsDanglingRoot) {
  std::string path = TempPath("btree_bad_root.db");
  std::string bytes(storage::kPageSize, '\0');
  const uint32_t magic = 0x58524254;
  const uint32_t root = 999;  // out of range
  std::memcpy(bytes.data(), &magic, 4);
  std::memcpy(bytes.data() + 4, &root, 4);
  WriteBytes(path, bytes);
  auto pager = storage::Pager::Open(path);
  ASSERT_TRUE(pager.ok());
  auto tree = storage::BTree::Open(pager.value().get());
  EXPECT_FALSE(tree.ok());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, VerifyIntegrityDetectsBitFlips) {
  auto pager = storage::Pager::Open("");
  ASSERT_TRUE(pager.ok());
  auto tree = storage::BTree::Open(pager.value().get());
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        (*tree)->Put("key" + std::to_string(i), "value").ok());
  }
  ASSERT_TRUE((*tree)->VerifyIntegrity().ok());

  // Flip bytes inside a non-meta page's cell area and expect the verifier
  // to notice (key-order or bound violations).
  Random rng(1);
  int detected = 0;
  int trials = 0;
  for (storage::PageId id = 2; id < pager.value()->page_count() && trials < 8;
       ++id) {
    storage::PageGuard guard = pager.value()->Fetch(id);
    storage::Page* p = guard.get();
    if (p->data[0] != 1) continue;  // leaves only
    ++trials;
    char saved = p->data[storage::kPageSize - 100];
    p->data[storage::kPageSize - 100] =
        static_cast<char>(~p->data[storage::kPageSize - 100]);
    if (!(*tree)->VerifyIntegrity().ok()) ++detected;
    p->data[storage::kPageSize - 100] = saved;
  }
  ASSERT_GT(trials, 0);
  EXPECT_GT(detected, 0);
  // Restored pages verify again.
  EXPECT_TRUE((*tree)->VerifyIntegrity().ok());
}

TEST(FailureInjectionTest, FuzzedTreeAlwaysVerifies) {
  Random rng(99);
  auto pager = storage::Pager::Open("");
  auto tree = storage::BTree::Open(pager.value().get());
  for (int op = 0; op < 2000; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(0, 300));
    if (rng.OneIn(0.7)) {
      std::string value(static_cast<size_t>(rng.Uniform(0, 2000)), 'v');
      ASSERT_TRUE((*tree)->Put(key, value).ok());
    } else {
      (void)(*tree)->Delete(key);
    }
    if (op % 250 == 0) {
      ASSERT_TRUE((*tree)->VerifyIntegrity().ok()) << "op " << op;
    }
  }
  EXPECT_TRUE((*tree)->VerifyIntegrity().ok());
}

TEST(FailureInjectionTest, KVStoreRejectsTruncatedFile) {
  std::string path = TempPath("kv_truncated.db");
  {
    auto store = storage::KVStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("a", "b").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  // Truncate to a non-page-multiple size.
  std::filesystem::resize_file(path, storage::kPageSize + 17);
  EXPECT_FALSE(storage::KVStore::Open(path).ok());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, CorpusLoadRejectsCorruptRecords) {
  auto corpus = testutil::MakeFigure1Corpus();
  auto store = storage::KVStore::Open("");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(index::SaveCorpus(*corpus.index, store->get()).ok());

  // Overwrite the types record with garbage: load must fail cleanly.
  std::string key("m");
  key.push_back('\0');
  key += "types";
  ASSERT_TRUE((*store)->Put(key, "\xff\xff\xff\xff\xff").ok());
  auto loaded = index::LoadCorpus(**store);
  EXPECT_FALSE(loaded.ok());
}

TEST(FailureInjectionTest, CorpusLoadRejectsTruncatedPostings) {
  auto corpus = testutil::MakeFigure1Corpus();
  auto store = storage::KVStore::Open("");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(index::SaveCorpus(*corpus.index, store->get()).ok());

  std::string key("i");
  key.push_back('\0');
  key += "xml";
  auto original = (*store)->Get(key);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(
      (*store)->Put(key, original->substr(0, original->size() / 2)).ok());
  auto loaded = index::LoadCorpus(**store);
  EXPECT_FALSE(loaded.ok());
}

// Regression for the silent-truncation bug: a leaf page that fails to read
// mid-scan used to end the cursor exactly like a clean past-the-end, so
// LoadCorpus would return OK with only a prefix of the keywords. With the
// sticky cursor status, every load must be either an error or complete —
// never OK-but-partial. Injecting "fail after n successful reads" for
// increasing n walks the failure point through the whole scan.
TEST(FailureInjectionTest, CorpusLoadIsNeverSilentlyTruncated) {
  std::string path = TempPath("kv_read_injection.db");
  std::filesystem::remove(path);
  // A corpus big enough that its store spans many more pages than the
  // buffer pool: reads must actually hit the file for injection to land.
  std::string xml = "<bib>";
  for (int i = 0; i < 1500; ++i) {
    xml += "<item><title>entry" + std::to_string(i) + " shared</title></item>";
  }
  xml += "</bib>";
  auto corpus = testutil::MakeCorpus(xml);
  {
    auto store = storage::KVStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(index::SaveCorpus(*corpus.index, store->get()).ok());
  }
  const size_t full_count = corpus.index->index().keyword_count();
  ASSERT_GT(full_count, 0u);

  int injected_failures = 0;
  bool load_succeeded_without_injection_firing = false;
  // Dense failure points early in the scan, then geometric strides until
  // the failure point passes the last read and the load goes through.
  for (int64_t n = 0; n < (int64_t{1} << 30);
       n = n < 64 ? n + 1 : n * 2) {
    // Cold reopen with a minimal buffer pool so every page comes from disk
    // and the injected failure actually lands inside the scan.
    storage::PagerOptions pager_options;
    pager_options.max_cached_pages = 16;
    auto store = storage::KVStore::Open(path, pager_options);
    ASSERT_TRUE(store.ok());
    (*store)->mutable_pager()->SimulateReadFailuresForTesting(n);
    auto loaded = index::LoadCorpus(**store);
    if (loaded.ok()) {
      // An OK load must be COMPLETE, wherever the failure would have hit.
      ASSERT_EQ((*loaded)->index().keyword_count(), full_count) << "n=" << n;
      load_succeeded_without_injection_firing = true;
      break;  // n exceeds the total number of reads; later n can't fail
    }
    ++injected_failures;
  }
  // The sweep must have exercised both regimes: early n fail the load,
  // and some n is past the last read so the load completes.
  EXPECT_GT(injected_failures, 0);
  EXPECT_TRUE(load_succeeded_without_injection_firing);
  std::filesystem::remove(path);
}

// The cursor itself reports a failed leaf fetch through status(), and
// Seek() resets it.
TEST(FailureInjectionTest, CursorStatusIsStickyUntilReSeek) {
  std::string path = TempPath("btree_cursor_status.db");
  std::filesystem::remove(path);
  {
    auto pager = storage::Pager::Open(path);
    ASSERT_TRUE(pager.ok());
    auto tree = storage::BTree::Open(pager.value().get());
    ASSERT_TRUE(tree.ok());
    std::string value(64, 'v');
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          (*tree)->Put("key" + std::to_string(1000 + i), value).ok());
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  storage::PagerOptions pager_options;
  pager_options.max_cached_pages = 16;
  auto pager = storage::Pager::Open(path, pager_options);
  ASSERT_TRUE(pager.ok());
  auto tree = storage::BTree::Open(pager.value().get());
  ASSERT_TRUE(tree.ok());

  storage::BTree::Cursor cursor = (*tree)->NewCursor();
  cursor.Seek("");
  ASSERT_TRUE(cursor.status().ok());
  ASSERT_TRUE(cursor.Valid());
  (*pager)->SimulateReadFailuresForTesting(0);  // every further read fails
  size_t steps = 0;
  while (cursor.Valid()) {
    cursor.Next();
    ++steps;
    ASSERT_LT(steps, 1000u);
  }
  // The walk ended because a leaf could not be fetched, and the cursor
  // says so instead of looking like a clean end-of-scan.
  EXPECT_FALSE(cursor.status().ok());
  EXPECT_TRUE(cursor.status().IsIoError()) << cursor.status();

  (*pager)->SimulateReadFailuresForTesting(-1);
  cursor.Seek("");
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_TRUE(cursor.Valid());
  std::filesystem::remove(path);
}

// A read failure during a single-flight miss must reach every thread that
// joined the load, not just the one that issued the pread — and must not
// poison the page: once the injection clears, the next fetch retries the
// read and succeeds.
TEST(FailureInjectionTest, ConcurrentMissReadFailurePropagatesToAllWaiters) {
  std::string path = TempPath("single_flight_read_failure.pages");
  std::filesystem::remove(path);
  {
    auto pager = storage::Pager::Open(path);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 4; ++i) {
      auto guard = (*pager)->NewPage();
      guard->data[0] = static_cast<char>(guard.id());
      guard.MarkDirty();
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  storage::PagerOptions pager_options;
  pager_options.max_cached_pages = 16;
  auto pager_or = storage::Pager::Open(path, pager_options);
  ASSERT_TRUE(pager_or.ok());
  auto pager = std::move(pager_or).value();

  pager->SimulateReadFailuresForTesting(0);  // the next read fails
  // Hold the loading thread at the top of the read (the hook runs before
  // the injection check) until both other threads are queued behind it.
  pager->SetReadHookForTesting([&pager] {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (pager->single_flight_waits() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  });

  std::atomic<int> invalid_guards{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      storage::PageGuard guard = pager->Fetch(1);
      if (!guard.valid()) {
        invalid_guards.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  pager->SetReadHookForTesting(nullptr);
  EXPECT_EQ(invalid_guards.load(), 3);
  EXPECT_EQ(pager->page_reads(), 1u);  // one attempted read for all three
  EXPECT_EQ(pager->single_flight_waits(), 2u);

  // The failed load left no cache entry and no in-flight record behind, so
  // clearing the injection makes the page fetchable again.
  pager->SimulateReadFailuresForTesting(-1);
  storage::PageGuard retry = pager->Fetch(1);
  ASSERT_TRUE(retry.valid());
  EXPECT_EQ(retry->data[0], 1);
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, PagerResumesShortReadsAndWrites) {
  // Regression for the positional-I/O bug fixed in the serving-path sweep:
  // a short pread/pwrite (signal-interrupted transfer, pipe-limited
  // kernel) was treated as a hard error. The injected chunk cap forces
  // every page transfer through the resumption loop — 4096-byte pages at
  // 100 bytes per syscall is 41 partial transfers each way.
  std::string path = TempPath("pager_partial_io.db");
  std::remove(path.c_str());
  std::string payload(storage::kPageSize, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131 + 17);
  }
  storage::PageId data_page = storage::kInvalidPageId;
  {
    auto pager_or = storage::Pager::Open(path);
    ASSERT_TRUE(pager_or.ok());
    auto& pager = *pager_or.value();
    pager.SetMaxIoChunkForTesting(100);
    auto meta = pager.NewPage();  // reserve page 0
    auto guard = pager.NewPage();
    ASSERT_TRUE(guard.valid());
    data_page = guard.id();
    std::memcpy(guard->data, payload.data(), payload.size());
    guard.MarkDirty();
    guard.Release();
    meta.Release();
    ASSERT_TRUE(pager.Flush().ok());
    ASSERT_TRUE(pager.status().ok());
  }
  {
    auto pager_or = storage::Pager::Open(path);
    ASSERT_TRUE(pager_or.ok());
    auto& pager = *pager_or.value();
    pager.SetMaxIoChunkForTesting(100);
    auto guard = pager.Fetch(data_page);
    ASSERT_TRUE(guard.valid());
    EXPECT_EQ(std::memcmp(guard->data, payload.data(), payload.size()), 0);
    EXPECT_TRUE(pager.status().ok());
  }
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, PagerShortReadAtEofIsTruncationError) {
  // The resumption loop must still distinguish "resume after a short
  // transfer" from "the file genuinely ends mid-page": EOF inside a page
  // is corruption, not something to retry forever.
  std::string path = TempPath("pager_truncated_page.db");
  WriteBytes(path, std::string(2 * storage::kPageSize, 'x'));
  auto pager_or = storage::Pager::Open(path);
  ASSERT_TRUE(pager_or.ok());
  auto& pager = *pager_or.value();
  // The device shrinks underneath the open pager: page 1 now ends 100
  // bytes in, so its read hits EOF mid-page.
  std::filesystem::resize_file(path, storage::kPageSize + 100);
  auto guard = pager.Fetch(1);
  EXPECT_FALSE(guard.valid());
}

TEST(FailureInjectionTest, ParserSurvivesRandomGarbage) {
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    size_t len = static_cast<size_t>(rng.Uniform(0, 200));
    std::string input(len, ' ');
    for (auto& c : input) {
      c = static_cast<char>(rng.Uniform(32, 126));
    }
    // Must not crash; ok() may be either way (garbage can parse as XML).
    auto doc = xml::ParseXml(input);
    (void)doc.ok();
  }
}

TEST(FailureInjectionTest, ParserSurvivesMutilatedXml) {
  Random rng(8);
  std::string base = testutil::kFigure1Xml;
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
    switch (rng.Uniform(0, 2)) {
      case 0:
        mutated[pos] = static_cast<char>(rng.Uniform(32, 126));
        break;
      case 1:
        mutated.erase(pos, static_cast<size_t>(rng.Uniform(1, 20)));
        break;
      default:
        mutated.insert(pos, "<");
        break;
    }
    auto doc = xml::ParseXml(mutated);
    if (doc.ok()) {
      // A successfully parsed mutation must still index cleanly.
      auto corpus = index::BuildIndex(*doc);
      EXPECT_GE(corpus->index().keyword_count(), 0u);
    }
  }
}

}  // namespace
}  // namespace xrefine
