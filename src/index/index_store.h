// Persists an IndexedCorpus into the KVStore (the paper stores its indexes
// in Berkeley DB B-trees, Section VII) and loads it back. Key spaces:
//   "m\0types"      node-type table
//   "m\0typestats"  N_T and G_T per type
//   "i\0<keyword>"  inverted list
//   "f\0<keyword>"  frequent-table row (df/tf per type)
#ifndef XREFINE_INDEX_INDEX_STORE_H_
#define XREFINE_INDEX_INDEX_STORE_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "index/index_builder.h"
#include "storage/kvstore.h"

namespace xrefine::index {

/// Writes the corpus into `store` and flushes it.
[[nodiscard]] Status SaveCorpus(const IndexedCorpus& corpus,
                                storage::KVStore* store);

/// Reads a corpus back. The result has no Document attached; queries still
/// run (results are Dewey labels), but subtree snippets are unavailable.
[[nodiscard]] StatusOr<std::unique_ptr<IndexedCorpus>> LoadCorpus(
    const storage::KVStore& store);

}  // namespace xrefine::index

#endif  // XREFINE_INDEX_INDEX_STORE_H_
