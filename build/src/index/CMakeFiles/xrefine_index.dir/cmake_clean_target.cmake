file(REMOVE_RECURSE
  "libxrefine_index.a"
)
