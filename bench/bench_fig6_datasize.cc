// Figure 6 reproduction: Top-3 refinement time vs data size (20%..100% of
// the DBLP corpus) for SLE and Partition, over a fixed batch of corrupted
// queries.
//
// Expected shape (paper Section VIII-B): both algorithms scale
// near-linearly with data size.
#include "bench/bench_util.h"

namespace xrefine::bench {
namespace {

void Main() {
  PrintHeader("Figure 6: Top-3 refinement time vs data size (ms/query)");
  const size_t kFullAuthors = 1500;
  std::printf("%-12s %12s %12s %12s %12s\n", "size", "nodes", "queries",
              "sle", "partition");

  for (int pct = 20; pct <= 100; pct += 20) {
    size_t authors = kFullAuthors * static_cast<size_t>(pct) / 100;
    Env env = MakeDblpEnv(authors);
    auto pool = MakePool(env, 40, "inproceedings", 555);
    if (pool.empty()) continue;

    double times[2];
    const core::RefineAlgorithm algorithms[] = {
        core::RefineAlgorithm::kShortListEager,
        core::RefineAlgorithm::kPartition};
    for (int a = 0; a < 2; ++a) {
      core::XRefineOptions options;
      options.algorithm = algorithms[a];
      options.top_k = 3;
      for (const auto& cq : pool) env.Run(cq.corrupted, options);  // warm
      double total = TimeMs(
          [&] {
            for (const auto& cq : pool) env.Run(cq.corrupted, options);
          },
          3);
      times[a] = total / static_cast<double>(pool.size());
    }
    std::printf("%11d%% %12zu %12zu %12.3f %12.3f\n", pct,
                env.doc->NodeCount(), pool.size(), times[0], times[1]);
  }
  std::printf("\nnote: expect both series to grow roughly linearly.\n");
}

}  // namespace
}  // namespace xrefine::bench

int main() {
  xrefine::bench::Main();
  return 0;
}
