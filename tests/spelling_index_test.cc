// Tests for the SymSpell-style deletion-neighborhood spelling index and
// the shared VocabularyIndex snapshot. The load-bearing test is the
// randomized equivalence property: over generated vocabularies, the
// indexed probe must return exactly the candidates of the banded linear
// scan it replaces — same words, same distances, same ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "tests/test_helpers.h"
#include "text/edit_distance.h"
#include "text/porter_stemmer.h"
#include "text/spelling_index.h"
#include "text/vocabulary_index.h"

namespace xrefine::text {
namespace {

// --- deletion-neighborhood generator ----------------------------------------

TEST(DeletionNeighborhoodTest, ContainsSourceAndSingleDeletes) {
  std::vector<std::string> out;
  CollectDeletionNeighborhood("abc", 1, &out);
  EXPECT_EQ(out, (std::vector<std::string>{"ab", "abc", "ac", "bc"}));
}

TEST(DeletionNeighborhoodTest, DedupsRepeatedCharacters) {
  // "aa" loses either 'a' to the same string; depth 2 reaches "".
  std::vector<std::string> out;
  CollectDeletionNeighborhood("aa", 2, &out);
  EXPECT_EQ(out, (std::vector<std::string>{"", "a", "aa"}));
}

TEST(DeletionNeighborhoodTest, ZeroDeletesIsJustTheWord) {
  std::vector<std::string> out;
  CollectDeletionNeighborhood("word", 0, &out);
  EXPECT_EQ(out, (std::vector<std::string>{"word"}));
}

TEST(DeletionNeighborhoodTest, AppendsAfterExistingContent) {
  std::vector<std::string> out = {"sentinel"};
  CollectDeletionNeighborhood("ab", 1, &out);
  EXPECT_EQ(out, (std::vector<std::string>{"sentinel", "a", "ab", "b"}));
}

// --- spelling index ---------------------------------------------------------

// The original banded scan over the whole vocabulary: the reference the
// index must reproduce exactly.
std::vector<SpellingIndex::Match> LinearCandidates(
    const std::vector<std::string>& words, std::string_view term, int max_d) {
  std::vector<SpellingIndex::Match> out;
  for (size_t id = 0; id < words.size(); ++id) {
    int d = EditDistanceAtMost(term, words[id], max_d);
    if (d <= max_d) {
      out.push_back(SpellingIndex::Match{static_cast<uint32_t>(id), d});
    }
  }
  return out;
}

void ExpectSameMatches(const std::vector<SpellingIndex::Match>& indexed,
                       const std::vector<SpellingIndex::Match>& linear,
                       std::string_view term) {
  ASSERT_EQ(indexed.size(), linear.size()) << "term: " << term;
  for (size_t i = 0; i < indexed.size(); ++i) {
    EXPECT_EQ(indexed[i].word_id, linear[i].word_id) << "term: " << term;
    EXPECT_EQ(indexed[i].distance, linear[i].distance) << "term: " << term;
  }
}

TEST(SpellingIndexTest, FindsExactAndNearMatches) {
  std::vector<std::string> words = {"data", "database", "date"};
  SpellingIndex index(&words, 2);

  std::vector<SpellingIndex::Match> matches;
  index.Candidates("databse", &matches);  // classic transposition-ish typo
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].word_id, 1u);  // "database"
  EXPECT_EQ(matches[0].distance, 1);

  matches.clear();
  index.Candidates("date", &matches);  // exact word + neighbors
  ExpectSameMatches(matches, LinearCandidates(words, "date", 2), "date");
  bool has_exact = false;
  for (const auto& m : matches) {
    if (m.word_id == 2u) {
      has_exact = true;
      EXPECT_EQ(m.distance, 0);
    }
  }
  EXPECT_TRUE(has_exact);
}

TEST(SpellingIndexTest, EmptyProbeMatchesShortWords) {
  std::vector<std::string> words = {"a", "ab", "b"};
  SpellingIndex index(&words, 1);
  std::vector<SpellingIndex::Match> matches;
  index.Candidates("", &matches);
  ExpectSameMatches(matches, LinearCandidates(words, "", 1), "<empty>");
  ASSERT_EQ(matches.size(), 2u);  // "a" and "b" at distance 1; "ab" is 2 away
}

TEST(SpellingIndexTest, NoFalseNegativesFromLongProbes) {
  // A probe longer than any word by exactly max_d must still reach it:
  // insertions on the word side are deletions on the probe side.
  std::vector<std::string> words = {"cat"};
  SpellingIndex index(&words, 2);
  std::vector<SpellingIndex::Match> matches;
  index.Candidates("catxy", &matches);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].distance, 2);
}

// Randomized equivalence: small alphabet + short words maximise accidental
// neighborhood collisions, the regime where an over- or under-eager probe
// would diverge from the scan.
TEST(SpellingIndexTest, RandomizedEquivalenceWithLinearScan) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    Random rng(seed);
    std::set<std::string> pool;
    while (pool.size() < 60) {
      auto len = static_cast<size_t>(rng.Uniform(1, 8));
      std::string w;
      for (size_t i = 0; i < len; ++i) {
        w.push_back(static_cast<char>('a' + rng.Uniform(0, 2)));
      }
      pool.insert(w);
    }
    std::vector<std::string> words(pool.begin(), pool.end());  // sorted

    for (int max_d : {1, 2}) {
      SpellingIndex index(&words, max_d);
      std::vector<std::string> probes;
      // Mutations of corpus words: the realistic typo case.
      for (const std::string& w : words) {
        std::string typo = w;
        int edits = static_cast<int>(rng.Uniform(1, 2));
        for (int e = 0; e < edits; ++e) {
          auto pos = static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(typo.size())));
          switch (rng.Uniform(0, 2)) {
            case 0:  // substitute
              if (!typo.empty()) {
                typo[pos % typo.size()] =
                    static_cast<char>('a' + rng.Uniform(0, 3));
              }
              break;
            case 1:  // insert
              typo.insert(typo.begin() + static_cast<std::ptrdiff_t>(pos),
                          static_cast<char>('a' + rng.Uniform(0, 3)));
              break;
            default:  // delete
              if (!typo.empty()) typo.erase(pos % typo.size(), 1);
              break;
          }
        }
        probes.push_back(typo);
      }
      // Arbitrary strings, including ones far from every word.
      for (int i = 0; i < 40; ++i) {
        auto len = static_cast<size_t>(rng.Uniform(0, 10));
        std::string p;
        for (size_t j = 0; j < len; ++j) {
          p.push_back(static_cast<char>('a' + rng.Uniform(0, 4)));
        }
        probes.push_back(p);
      }

      for (const std::string& probe : probes) {
        std::vector<SpellingIndex::Match> indexed;
        index.Candidates(probe, &indexed);
        ExpectSameMatches(indexed, LinearCandidates(words, probe, max_d),
                          probe);
      }
    }
  }
}

TEST(SpellingIndexTest, SizingIntrospectionIsPopulated) {
  std::vector<std::string> words = {"alpha", "beta", "gamma"};
  SpellingIndex index(&words, 2);
  EXPECT_GT(index.entry_count(), words.size());  // variants outnumber words
  EXPECT_GT(index.approximate_bytes(), 0u);
  EXPECT_EQ(index.max_edit_distance(), 2);
}

// --- vocabulary index -------------------------------------------------------

TEST(VocabularyIndexTest, BuildSortsAndDedups) {
  auto vocab = VocabularyIndex::Build({"banana", "apple", "apple", "cherry"},
                                      /*max_edit_distance=*/1);
  EXPECT_EQ(vocab->words(),
            (std::vector<std::string>{"apple", "banana", "cherry"}));
}

TEST(VocabularyIndexTest, StemVariantsGroupMorphology) {
  auto vocab = VocabularyIndex::Build({"match", "matched", "matching", "xml"},
                                      /*max_edit_distance=*/1);
  const std::vector<uint32_t>* variants =
      vocab->StemVariants(PorterStem("matches"));
  ASSERT_NE(variants, nullptr);
  std::vector<std::string> got;
  for (uint32_t id : *variants) got.push_back(vocab->words()[id]);
  EXPECT_EQ(got, (std::vector<std::string>{"match", "matched", "matching"}));
  EXPECT_EQ(vocab->StemVariants("nosuchstem"), nullptr);
}

TEST(VocabularyIndexTest, SnapshotSharedAcrossCallersPerDistance) {
  auto corpus = testutil::MakeFigure1Corpus();
  auto a = corpus.index->VocabularyIndexSnapshot(2);
  auto b = corpus.index->VocabularyIndexSnapshot(2);
  EXPECT_EQ(a.get(), b.get());  // N engines, one build
  auto c = corpus.index->VocabularyIndexSnapshot(1);
  EXPECT_NE(a.get(), c.get());  // distance is part of the key
  EXPECT_EQ(a->spelling().max_edit_distance(), 2);
  EXPECT_EQ(c->spelling().max_edit_distance(), 1);
}

}  // namespace
}  // namespace xrefine::text
