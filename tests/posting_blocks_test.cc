// Tests for the block-compressed posting codec (stored format v3) and the
// flat decode path shared with v2: round-trips, block geometry, the skip
// directory, and — the load-bearing part — corruption fuzzing. The decode
// contract is "non-OK Status or exactly the declared postings": a truncated
// or bit-flipped record must never yield a silently short list.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "index/index_store.h"
#include "index/posting_blocks.h"
#include "storage/serde.h"

namespace xrefine::index {
namespace {

Posting P(std::vector<uint32_t> comps, xml::TypeId type = 0) {
  return Posting{xml::Dewey(std::move(comps)), type};
}

// A random document-ordered posting list with deep chains, duplicate
// labels, and ancestor/descendant pairs in the same list.
PostingList RandomList(Random& rng, size_t n, size_t max_depth) {
  PostingList list;
  std::vector<uint32_t> label = {0};
  for (size_t i = 0; i < n; ++i) {
    // Random walk in document order: either descend (append components),
    // or move to a later sibling at a random depth.
    if (rng.OneIn(0.4) && label.size() < max_depth) {
      size_t grow = static_cast<size_t>(rng.Uniform(1, 3));
      for (size_t g = 0; g < grow && label.size() < max_depth; ++g) {
        label.push_back(static_cast<uint32_t>(rng.Uniform(0, 4)));
      }
    } else if (!rng.OneIn(0.2)) {  // 0.2: emit a duplicate label
      size_t cut = static_cast<size_t>(
          rng.Uniform(1, static_cast<int64_t>(label.size())));
      label.resize(cut);
      label.back() += static_cast<uint32_t>(rng.Uniform(1, 3));
    }
    list.push_back(
        Posting{xml::Dewey(label),
                static_cast<xml::TypeId>(rng.Uniform(0, 7))});
  }
  return list;
}

void ExpectRoundTrip(const PostingList& list, size_t block_capacity) {
  std::string record = EncodePostingsBlocked(list, block_capacity);
  FlatPostingList flat;
  ASSERT_TRUE(DecodePostingsFlat(record, &flat).ok());
  EXPECT_EQ(flat.ToPostings(), list);
  // The AoS decode path serves the same bytes.
  PostingList aos;
  ASSERT_TRUE(DecodePostings(record, &aos).ok());
  EXPECT_EQ(aos, list);
}

TEST(PostingBlocksTest, RoundTripAcrossCapacities) {
  Random rng(7);
  PostingList list = RandomList(rng, 1000, 12);
  for (size_t capacity : {1u, 2u, 3u, 7u, 128u, 2048u}) {
    ExpectRoundTrip(list, capacity);
  }
}

TEST(PostingBlocksTest, RoundTripEmptyList) {
  ExpectRoundTrip(PostingList{}, 128);
  std::string record = EncodePostingsBlocked(PostingList{});
  auto cursor_or = BlockedPostingCursor::Open(record);
  ASSERT_TRUE(cursor_or.ok());
  EXPECT_EQ(cursor_or.value().posting_count(), 0u);
  EXPECT_EQ(cursor_or.value().block_count(), 0u);
}

TEST(PostingBlocksTest, RoundTripSinglePosting) {
  ExpectRoundTrip({P({0, 3, 1})}, 128);
  // Root (depth-0) label is representable too.
  ExpectRoundTrip({P({})}, 128);
}

TEST(PostingBlocksTest, RoundTripMaxDepthLabel) {
  // A pathologically deep label (the parser's depth guard allows up to
  // 512). deep starts with 0, so document order is {0} < deep < {1}.
  std::vector<uint32_t> deep;
  for (uint32_t d = 0; d < 512; ++d) deep.push_back(d % 5);
  PostingList list = {P({0}), P(deep), P({1})};
  for (size_t capacity : {1u, 2u, 128u}) ExpectRoundTrip(list, capacity);
}

TEST(PostingBlocksTest, BlockBoundaryStraddle) {
  // capacity*2+1 postings: two full blocks plus a one-posting tail, with a
  // deep shared prefix crossing the boundary so the first posting of each
  // block must re-carry the full label (blocks are self-contained).
  const size_t capacity = 4;
  PostingList list;
  for (uint32_t i = 0; i < 2 * capacity + 1; ++i) {
    list.push_back(P({0, 1, 2, 3, i}));
  }
  std::string record = EncodePostingsBlocked(list, capacity);
  auto cursor_or = BlockedPostingCursor::Open(record);
  ASSERT_TRUE(cursor_or.ok());
  const auto& cursor = cursor_or.value();
  ASSERT_EQ(cursor.block_count(), 3u);
  EXPECT_EQ(cursor.block_size(0), capacity);
  EXPECT_EQ(cursor.block_size(1), capacity);
  EXPECT_EQ(cursor.block_size(2), 1u);
  EXPECT_EQ(cursor.block_first_posting(0), 0u);
  EXPECT_EQ(cursor.block_first_posting(1), capacity);
  EXPECT_EQ(cursor.block_first_posting(2), 2 * capacity);

  // Decoding only the middle block yields exactly its slice.
  FlatPostingList middle;
  ASSERT_TRUE(cursor.DecodeBlock(1, &middle).ok());
  ASSERT_EQ(middle.size(), capacity);
  for (size_t i = 0; i < capacity; ++i) {
    EXPECT_EQ(middle.DeweyAt(i), list[capacity + i].dewey);
    EXPECT_EQ(middle.type(i), list[capacity + i].type);
  }
  ExpectRoundTrip(list, capacity);
}

TEST(PostingBlocksTest, SkipHeadersRouteEveryLabelToItsBlock) {
  Random rng(17);
  PostingList list = RandomList(rng, 700, 10);
  const size_t capacity = 16;
  std::string record = EncodePostingsBlocked(list, capacity);
  auto cursor_or = BlockedPostingCursor::Open(record);
  ASSERT_TRUE(cursor_or.ok());
  const auto& cursor = cursor_or.value();

  // Each block's max label is its last posting's label.
  for (size_t b = 0; b < cursor.block_count(); ++b) {
    size_t last = cursor.block_first_posting(b) + cursor.block_size(b) - 1;
    EXPECT_EQ(cursor.block_max(b).ToDewey(), list[last].dewey);
  }
  // FindBlock lands every posting's own label in a block that contains an
  // occurrence of it (duplicates may end a block, putting later copies in
  // the next one — FindBlock returns the first block whose max >= v).
  for (size_t i = 0; i < list.size(); ++i) {
    xml::DeweyRef v(list[i].dewey);
    size_t b = cursor.FindBlock(v);
    ASSERT_LT(b, cursor.block_count());
    FlatPostingList decoded;
    ASSERT_TRUE(cursor.DecodeBlock(b, &decoded).ok());
    bool found = false;
    for (size_t j = 0; j < decoded.size(); ++j) {
      if (decoded.label(j) == v) found = true;
    }
    EXPECT_TRUE(found) << "posting " << i << " not in block " << b;
    // No earlier block can contain it: their maxes are < v.
    if (b > 0) {
      EXPECT_LT(cursor.block_max(b - 1), v);
    }
  }
  // A label past the end of the list routes past the last block.
  xml::Dewey beyond({0xffffffff});
  EXPECT_EQ(cursor.FindBlock(xml::DeweyRef(beyond)), cursor.block_count());
}

// --- corruption fuzzing ------------------------------------------------------

// Declared posting count at the head of a record (both formats place it
// immediately after the version byte).
bool ReadDeclaredCount(const std::string& record, uint32_t* count) {
  if (record.empty()) return false;
  const char* p = record.data() + 1;
  return storage::GetVarint32(&p, record.data() + record.size(), count);
}

// The decode contract under arbitrary corruption: either a non-OK Status,
// or an OK decode of exactly the count the (corrupt) record declares —
// never a silently short or long list, never a crash (ASan/UBSan legs run
// this test too).
void ExpectFailsOrExactCount(const std::string& record) {
  FlatPostingList flat;
  Status st = DecodePostingsFlat(record, &flat);
  if (!st.ok()) return;
  uint32_t declared = 0;
  ASSERT_TRUE(ReadDeclaredCount(record, &declared));
  EXPECT_EQ(flat.size(), declared);
}

std::string EncodeFor(const PostingList& list, PostingFormat format) {
  return EncodePostings(list, format);
}

TEST(PostingBlocksFuzzTest, EveryTruncationFailsLoudly) {
  Random rng(27);
  PostingList list = RandomList(rng, 300, 8);
  for (PostingFormat format :
       {PostingFormat::kPrefixDelta, PostingFormat::kBlocked}) {
    std::string record = EncodeFor(list, format);
    for (size_t len = 0; len < record.size(); ++len) {
      std::string truncated = record.substr(0, len);
      FlatPostingList flat;
      Status st = DecodePostingsFlat(truncated, &flat);
      // A strict prefix can never decode to the full declared count, so OK
      // is unconditionally a silent-truncation bug here.
      EXPECT_FALSE(st.ok()) << "format " << static_cast<int>(format)
                            << " decoded a " << len << "-byte prefix of a "
                            << record.size() << "-byte record";
    }
  }
}

TEST(PostingBlocksFuzzTest, TrailingBytesAreRejected) {
  PostingList list = {P({0, 1}), P({0, 2})};
  for (PostingFormat format :
       {PostingFormat::kPrefixDelta, PostingFormat::kBlocked}) {
    std::string record = EncodeFor(list, format) + std::string(1, '\0');
    FlatPostingList flat;
    EXPECT_FALSE(DecodePostingsFlat(record, &flat).ok());
  }
}

// Regression (found by fuzz_posting_decode, crash-v2-trailing-bytes): the
// eager v2 decoder accepted bytes past the declared postings while the
// flat decoder rejected them, so whether a damaged record "decoded" hinged
// on which path happened to serve it. Both must reject.
TEST(PostingBlocksFuzzTest, EagerDecoderRejectsTrailingBytesToo) {
  PostingList list = {P({0, 1}), P({0, 2})};
  for (PostingFormat format :
       {PostingFormat::kPrefixDelta, PostingFormat::kBlocked}) {
    std::string record = EncodeFor(list, format) + std::string(1, '\x05');
    PostingList decoded;
    EXPECT_FALSE(DecodePostings(record, &decoded).ok());
  }
  // The minimized crasher: version 2, zero postings, two stray bytes.
  PostingList decoded;
  EXPECT_FALSE(
      DecodePostings(std::string("\x02\x00\x00\x05", 4), &decoded).ok());
}

// Regression (found by fuzz_posting_decode, crash-v3-unsorted-block-max):
// FindBlock binary-searches the skip directory, so block maxes that go
// backwards would silently mis-route probes and drop postings from query
// results. Open must reject them as corruption.
TEST(PostingBlocksFuzzTest, OutOfOrderBlockMaxesAreRejected) {
  // Hand-built v3 record, all varints single-byte: two one-posting blocks
  // whose max labels are (0,5) then (0,3) — descending document order.
  auto block = [](uint32_t leaf) {
    std::string b;
    b.append("\x05\x01\x02", 3);                // payload=5, count=1, depth=2
    b += '\x00';                                // max component 0
    b += static_cast<char>(leaf);               // max component `leaf`
    b.append("\x01\x00\x02", 3);                // type=1, reuse=0, fresh=2
    b += '\x00';                                // component 0
    b += static_cast<char>(leaf);               // component `leaf`
    return b;
  };
  std::string header("\x03\x02\x01", 3);        // v3, total=2, capacity=1
  std::string sorted = header + block(3) + block(5);
  EXPECT_TRUE(BlockedPostingCursor::Open(sorted).ok());
  std::string unsorted = header + block(5) + block(3);
  EXPECT_FALSE(BlockedPostingCursor::Open(unsorted).ok());
}

TEST(PostingBlocksFuzzTest, SingleBitFlipsNeverDecodeShort) {
  Random rng(37);
  PostingList list = RandomList(rng, 120, 8);
  for (PostingFormat format :
       {PostingFormat::kPrefixDelta, PostingFormat::kBlocked}) {
    std::string record = EncodeFor(list, format);
    for (size_t byte = 0; byte < record.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string flipped = record;
        flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
        ExpectFailsOrExactCount(flipped);
      }
    }
  }
}

TEST(PostingBlocksFuzzTest, RandomMultiByteCorruption) {
  Random rng(47);
  PostingList list = RandomList(rng, 400, 10);
  for (PostingFormat format :
       {PostingFormat::kPrefixDelta, PostingFormat::kBlocked}) {
    std::string record = EncodeFor(list, format);
    for (int round = 0; round < 400; ++round) {
      std::string mutated = record;
      size_t edits = static_cast<size_t>(rng.Uniform(1, 8));
      for (size_t e = 0; e < edits; ++e) {
        size_t pos = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[pos] = static_cast<char>(rng.Uniform(0, 255));
      }
      if (rng.OneIn(0.3)) {
        mutated.resize(static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(mutated.size()))));
      }
      ExpectFailsOrExactCount(mutated);
    }
  }
}

// Regression seeds: hand-built corruptions that target one validation each.
// These pin the exact failure modes the fuzzers above found probabilistically.

TEST(PostingBlocksFuzzTest, RegressionZeroBlockCapacity) {
  // version 3, total 0, capacity 0.
  std::string record = {3, 0, 0};
  FlatPostingList flat;
  Status st = DecodePostingsFlat(record, &flat);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
}

TEST(PostingBlocksFuzzTest, RegressionBlockCountsDisagreeWithTotal) {
  std::string record = EncodePostingsBlocked({P({0, 1}), P({0, 2})}, 128);
  // total is the varint at offset 1 (value 2, single byte): claim 3.
  ASSERT_EQ(record[1], 2);
  record[1] = 3;
  FlatPostingList flat;
  Status st = DecodePostingsFlat(record, &flat);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
}

TEST(PostingBlocksFuzzTest, RegressionBlockMaxLabelMismatch) {
  // Corrupt the skip key so it disagrees with the block's decoded last
  // label: the self-check must catch it (a wrong skip key would silently
  // misroute probes).
  PostingList list = {P({0, 1}), P({0, 2})};
  std::string good = EncodePostingsBlocked(list, 128);
  auto cursor_or = BlockedPostingCursor::Open(good);
  ASSERT_TRUE(cursor_or.ok());
  // Find the byte holding the max label's last component (value 2) in the
  // block header and nudge it. Header layout after version/total/capacity:
  // payload_bytes, count, max_depth, max components...
  bool caught = false;
  for (size_t i = 3; i < good.size(); ++i) {
    if (good[i] != 2) continue;
    std::string bad = good;
    bad[i] = 3;
    FlatPostingList flat;
    Status st = DecodePostingsFlat(bad, &flat);
    if (!st.ok()) caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(PostingBlocksFuzzTest, RegressionHostileReuseDepth) {
  // A posting claiming to reuse more prefix components than its
  // predecessor has must be rejected, not read out of bounds.
  std::string record;
  record.push_back(2);  // v2
  record.push_back(1);  // count 1
  record.push_back(0);  // type
  record.push_back(9);  // reuse 9 components of a non-existent predecessor
  record.push_back(0);  // fresh 0
  FlatPostingList flat;
  Status st = DecodePostingsFlat(record, &flat);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
}

TEST(PostingBlocksFuzzTest, RegressionHostileBlockPayloadLength) {
  // A block header declaring more payload bytes than the record holds.
  std::string record;
  record.push_back(3);     // v3
  record.push_back(1);     // total 1
  record.push_back(128);   // capacity 128... must be varint-encoded
  record.back() = 0x7f;    // capacity 127 (single byte varint)
  record.push_back(0x7f);  // payload_bytes 127 — far past the record end
  record.push_back(1);     // count 1
  record.push_back(0);     // max_depth 0
  FlatPostingList flat;
  Status st = DecodePostingsFlat(record, &flat);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
}

}  // namespace
}  // namespace xrefine::index
