// Shared fixtures: the paper's Figure 1 document and helpers.
#ifndef XREFINE_TESTS_TEST_HELPERS_H_
#define XREFINE_TESTS_TEST_HELPERS_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "xml/document.h"
#include "xml/xml_parser.h"

namespace xrefine::testutil {

// The running example of the paper (Figure 1), abridged: two authors, the
// first with an inproceedings and an article, the second with publications
// and a hobby.
inline constexpr const char* kFigure1Xml = R"(
<bib>
  <author>
    <name>John Martin</name>
    <publications>
      <inproceedings>
        <title>efficient XML keyword search on online database</title>
        <year>2003</year>
        <booktitle>sigmod</booktitle>
      </inproceedings>
      <article>
        <title>XML twig pattern matching</title>
        <year>2005</year>
        <journal>vldb</journal>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Smith</name>
    <publications>
      <inproceedings>
        <title>skyline computation over data stream</title>
        <year>2006</year>
        <booktitle>icde</booktitle>
      </inproceedings>
      <article>
        <title>machine learning for world wide web search</title>
        <year>2004</year>
        <journal>kdd</journal>
      </article>
    </publications>
    <hobby>tennis</hobby>
  </author>
</bib>
)";

inline xml::Document ParseFigure1() {
  auto doc = xml::ParseXml(kFigure1Xml);
  if (!doc.ok()) std::abort();
  return std::move(doc).value();
}

/// A document plus its index, tied together for lifetime safety.
struct Corpus {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<index::IndexedCorpus> index;
};

inline Corpus MakeCorpus(const std::string& xml_text) {
  Corpus c;
  auto doc = xml::ParseXml(xml_text);
  if (!doc.ok()) std::abort();
  c.doc = std::make_unique<xml::Document>(std::move(doc).value());
  c.index = index::BuildIndex(*c.doc);
  return c;
}

inline Corpus MakeFigure1Corpus() { return MakeCorpus(kFigure1Xml); }

/// All Dewey labels of `results`, as strings, for compact assertions.
template <typename Results>
std::vector<std::string> DeweyStrings(const Results& results) {
  std::vector<std::string> out;
  for (const auto& r : results) out.push_back(r.dewey.ToString());
  return out;
}

}  // namespace xrefine::testutil

#endif  // XREFINE_TESTS_TEST_HELPERS_H_
