#include "common/logging.h"

#include <atomic>

namespace xrefine {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (fatal_) {
    std::cerr.flush();
    std::abort();
  }
  (void)level_;
}

}  // namespace internal_logging
}  // namespace xrefine
