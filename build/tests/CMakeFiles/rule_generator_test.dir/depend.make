# Empty dependencies file for rule_generator_test.
# This may be replaced when dependencies are built.
