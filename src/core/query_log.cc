#include "core/query_log.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_set>

#include "common/string_util.h"

namespace xrefine::core {

void QueryLog::Record(Query issued, Query accepted) {
  entries_.push_back(QueryLogEntry{std::move(issued), std::move(accepted)});
}

namespace {

// A candidate rewrite extracted from one log entry.
struct Rewrite {
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;
  RefineOp op;
};

// Key for aggregation across entries.
std::string RewriteKey(const Rewrite& r) {
  std::string key = JoinStrings(r.lhs, " ");
  key += " -> ";
  key += JoinStrings(r.rhs, " ");
  return key;
}

// Extracts at most one clean rewrite from an entry: the terms that changed
// between the issued and the accepted query. Entries with diffuse diffs
// (several independent changes) are skipped — they would mint noisy rules.
bool ExtractRewrite(const QueryLogEntry& entry, Rewrite* out) {
  std::unordered_set<std::string> issued_set(entry.issued.begin(),
                                             entry.issued.end());
  std::unordered_set<std::string> accepted_set(entry.accepted.begin(),
                                               entry.accepted.end());
  std::vector<std::string> removed;
  for (const auto& t : entry.issued) {
    if (accepted_set.count(t) == 0) removed.push_back(t);
  }
  std::vector<std::string> added;
  for (const auto& t : entry.accepted) {
    if (issued_set.count(t) == 0) added.push_back(t);
  }
  if (removed.empty() || added.empty()) return false;  // pure deletion/keep

  if (removed.size() == 1) {
    // Substitution (spelling fix, synonym, acronym expansion, split).
    out->lhs = removed;
    out->rhs = added;
    out->op = added.size() > 1 ? RefineOp::kSplit : RefineOp::kSubstitution;
    return true;
  }
  if (added.size() == 1) {
    // Candidate merge: the removed terms, in issued order, concatenate to
    // the added term and are adjacent in the issued query.
    std::string concat = JoinStrings(removed, "");
    if (concat != added.front()) return false;
    auto first = std::find(entry.issued.begin(), entry.issued.end(),
                           removed.front());
    if (first == entry.issued.end()) return false;
    size_t pos = static_cast<size_t>(first - entry.issued.begin());
    if (pos + removed.size() > entry.issued.size()) return false;
    for (size_t i = 0; i < removed.size(); ++i) {
      if (entry.issued[pos + i] != removed[i]) return false;
    }
    out->lhs = removed;
    out->rhs = added;
    out->op = RefineOp::kMerging;
    return true;
  }
  return false;
}

}  // namespace

RuleSet QueryLog::MineRules(const LogMiningOptions& options) const {
  std::map<std::string, std::pair<Rewrite, size_t>> counts;
  for (const auto& entry : entries_) {
    Rewrite rewrite;
    if (!ExtractRewrite(entry, &rewrite)) continue;
    auto key = RewriteKey(rewrite);
    auto it = counts.find(key);
    if (it == counts.end()) {
      counts.emplace(std::move(key), std::make_pair(std::move(rewrite), 1u));
    } else {
      ++it->second.second;
    }
  }

  RuleSet rules;
  for (auto& [key, entry] : counts) {
    auto& [rewrite, support] = entry;
    if (support < options.min_support) continue;
    // Frequent rewrites are trusted more: cost decays logarithmically.
    double cost = std::max(
        options.min_cost,
        options.base_cost -
            0.2 * std::log(static_cast<double>(support) /
                           static_cast<double>(options.min_support) +
                           1e-12));
    cost = std::min(cost, options.base_cost);
    rules.Add(RefinementRule{std::move(rewrite.lhs), std::move(rewrite.rhs),
                             rewrite.op, cost});
  }
  return rules;
}

Status QueryLog::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& entry : entries_) {
    out << JoinStrings(entry.issued, " ") << " | "
        << JoinStrings(entry.accepted, " ") << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<QueryLog> QueryLog::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  QueryLog log;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    size_t sep = trimmed.find('|');
    if (sep == std::string_view::npos) {
      return Status::Corruption("query log line " + std::to_string(line_no) +
                                ": missing '|'");
    }
    Query issued;
    Query accepted;
    {
      std::istringstream left{std::string(trimmed.substr(0, sep))};
      std::string term;
      while (left >> term) issued.push_back(term);
      std::istringstream right{std::string(trimmed.substr(sep + 1))};
      while (right >> term) accepted.push_back(term);
    }
    if (issued.empty() || accepted.empty()) {
      return Status::Corruption("query log line " + std::to_string(line_no) +
                                ": empty side");
    }
    log.Record(std::move(issued), std::move(accepted));
  }
  return log;
}

RuleSet MergeRuleSets(const RuleSet& a, const RuleSet& b) {
  RuleSet merged;
  merged.set_deletion_cost(a.deletion_cost());
  std::map<std::string, RefinementRule> best;
  auto fold = [&](const RuleSet& rs) {
    for (const auto& rule : rs.rules()) {
      std::string key =
          JoinStrings(rule.lhs, " ") + " -> " + JoinStrings(rule.rhs, " ");
      auto it = best.find(key);
      if (it == best.end() || rule.ds < it->second.ds) {
        best[key] = rule;
      }
    }
  };
  fold(a);
  fold(b);
  for (auto& [key, rule] : best) merged.Add(std::move(rule));
  return merged;
}

}  // namespace xrefine::core
