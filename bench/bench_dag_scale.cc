// DAG-compression scale benchmark: the memory and query-latency story of
// evaluating SLCA over DAG-compressed documents (xml/dag_document.h) as the
// corpus grows. For each dataset (DBLP, Baseball) and scale (1x / 10x / 50x)
// the run builds the same logical corpus twice —
//
//   tree   the uncompressed xml::Document + index::BuildIndex, and
//   dag    the streaming DagBuilder corpus + index::BuildIndexFromDag
//          (the uncompressed tree is never materialised on this path)
//
// — records resident bytes and build time for both, verifies that every
// query in a vocabulary-stratified set returns byte-identical SLCA results
// over both corpora under all three algorithms (the speedup/shrinkage claim
// is meaningless otherwise), then times queries over one of them:
//
//   --baseline   time the uncompressed tree corpus (the "before" config);
//   (default)    time the DAG corpus.
//
// Results land as bench.dag_scale.* gauges in the registry dump
// (--out <path>, default BENCH_dag_scale.json), one group per
// dataset/scale: tree_bytes, dag_bytes, dag_nodes, tree_build_ms,
// dag_build_ms, index_build_ms, query_us. Peak RSS is reported once for
// the whole run.
//
//   --quick      1x/4x only, fewer rounds — the smoke leg
//                tools/check_build_matrix.sh runs under the sanitizers.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "index/index_builder.h"
#include "slca/slca.h"
#include "workload/baseball_generator.h"
#include "workload/dblp_generator.h"
#include "xml/dag_document.h"
#include "xml/document.h"

namespace xrefine::bench {
namespace {

constexpr slca::SlcaAlgorithm kAlgorithms[] = {
    slca::SlcaAlgorithm::kStack, slca::SlcaAlgorithm::kScanEager,
    slca::SlcaAlgorithm::kIndexedLookup};

// Vocabulary-stratified conjunctive queries: rare+common pairs plus
// balanced-mid controls, the same mix the scan bench uses.
std::vector<std::vector<std::string>> MakeQuerySet(
    const index::IndexedCorpus& corpus, size_t per_class) {
  std::vector<std::pair<size_t, std::string>> by_size;
  for (const std::string& k : corpus.index().Vocabulary()) {
    size_t n = corpus.index().ListSize(k);
    if (n == 0) continue;
    by_size.emplace_back(n, k);
  }
  std::sort(by_size.begin(), by_size.end());
  auto at = [&](double pct) -> const std::string& {
    size_t i = static_cast<size_t>(pct * static_cast<double>(by_size.size()));
    return by_size[std::min(i, by_size.size() - 1)].second;
  };
  std::vector<std::vector<std::string>> out;
  for (size_t i = 0; i < per_class; ++i) {
    double j = static_cast<double>(i);
    out.push_back({at(0.02 + 0.02 * j), at(0.99 - 0.005 * j)});
    out.push_back({at(0.05 + 0.02 * j), at(0.90 - 0.01 * j), at(0.995)});
    out.push_back({at(0.50 + 0.03 * j), at(0.60 + 0.03 * j)});
  }
  return out;
}

std::string ResultKey(const std::vector<slca::SlcaResult>& results) {
  std::string key;
  for (const auto& r : results) {
    key += r.dewey.ToString();
    key += '#';
    key += std::to_string(r.type);
    key += '|';
  }
  return key;
}

struct DatasetPoint {
  std::string label;  // "dblp_x10"
  xml::Document doc;
  xml::DagDocument dag;
  double tree_build_ms = 0;
  double dag_build_ms = 0;
};

DatasetPoint MakeDblpPoint(double scale) {
  DatasetPoint p;
  p.label = "dblp_x" + std::to_string(static_cast<int>(scale));
  workload::DblpOptions options;
  options.scale = scale;
  Timer tree_timer;
  p.doc = workload::GenerateDblp(options);
  p.tree_build_ms = tree_timer.ElapsedMillis();
  Timer dag_timer;
  p.dag = workload::GenerateDblpDag(options);
  p.dag_build_ms = dag_timer.ElapsedMillis();
  return p;
}

DatasetPoint MakeBaseballPoint(double scale) {
  DatasetPoint p;
  p.label = "baseball_x" + std::to_string(static_cast<int>(scale));
  workload::BaseballOptions options;
  options.scale = scale;
  Timer tree_timer;
  p.doc = workload::GenerateBaseball(options);
  p.tree_build_ms = tree_timer.ElapsedMillis();
  Timer dag_timer;
  p.dag = workload::GenerateBaseballDag(options);
  p.dag_build_ms = dag_timer.ElapsedMillis();
  return p;
}

bool RunPoint(const DatasetPoint& point, bool quick, bool baseline) {
  metrics::Registry& reg = metrics::Registry::Global();
  const std::string prefix = "bench.dag_scale." + point.label + ".";

  const size_t tree_bytes = point.doc.ResidentBytes();
  const size_t dag_bytes = point.dag.ResidentBytes();
  std::printf(
      "%-14s logical nodes %10" PRIu64
      "  tree %9.2f MB  dag %8.2f MB  (%.1fx, %zu dag nodes, %zu shared)\n",
      point.label.c_str(), point.dag.LogicalNodeCount(),
      static_cast<double>(tree_bytes) / 1e6,
      static_cast<double>(dag_bytes) / 1e6,
      static_cast<double>(tree_bytes) / static_cast<double>(dag_bytes),
      point.dag.DagNodeCount(), point.dag.SharedSubtreeCount());
  if (point.dag.LogicalNodeCount() != point.doc.NodeCount()) {
    std::printf("NODE COUNT DIVERGENCE: dag %" PRIu64 " vs tree %zu\n",
                point.dag.LogicalNodeCount(), point.doc.NodeCount());
    return false;
  }

  Timer index_timer;
  auto tree_corpus = index::BuildIndex(point.doc);
  const double tree_index_ms = index_timer.ElapsedMillis();
  Timer dag_index_timer;
  auto dag_corpus = index::BuildIndexFromDag(point.dag);
  const double dag_index_ms = dag_index_timer.ElapsedMillis();

  // Correctness gate: byte-identical SLCA results over both corpora, every
  // algorithm, before anything is timed.
  auto queries = MakeQuerySet(*tree_corpus, quick ? 2 : 4);
  for (const auto& q : queries) {
    for (slca::SlcaAlgorithm algorithm : kAlgorithms) {
      auto tree_or = slca::ComputeSlcaForQuery(q, *tree_corpus,
                                               tree_corpus->types(), algorithm);
      auto dag_or = slca::ComputeSlcaForQuery(q, *dag_corpus,
                                              dag_corpus->types(), algorithm);
      if (!tree_or.ok() || !dag_or.ok()) {
        std::printf("FETCH FAILED during verification\n");
        return false;
      }
      if (ResultKey(tree_or.value()) != ResultKey(dag_or.value())) {
        std::printf("RESULT DIVERGENCE on %s algo %d\n", point.label.c_str(),
                    static_cast<int>(algorithm));
        return false;
      }
    }
  }

  // Timed phase: the configured corpus, indexed-lookup (the serving
  // default), best-of-rounds per query.
  const index::IndexedCorpus& timed =
      baseline ? *tree_corpus : *dag_corpus;
  const int rounds = quick ? 3 : 7;
  double total_ms = 0;
  for (const auto& q : queries) {
    double best = 1e9;
    for (int round = 0; round < rounds; ++round) {
      Timer t;
      auto results_or = slca::ComputeSlcaForQuery(
          q, timed, timed.types(), slca::SlcaAlgorithm::kIndexedLookup);
      double elapsed = t.ElapsedMillis();
      if (!results_or.ok()) {
        std::printf("FETCH FAILED during timing\n");
        return false;
      }
      best = std::min(best, elapsed);
    }
    total_ms += best;
  }
  const double query_us = total_ms * 1e3 / static_cast<double>(queries.size());
  std::printf(
      "%-14s verified %zu queries; build tree %.0f+%.0f ms, dag %.0f+%.0f "
      "ms; %s path %.1f us/query\n",
      point.label.c_str(), queries.size(), point.tree_build_ms, tree_index_ms,
      point.dag_build_ms, dag_index_ms, baseline ? "tree" : "dag", query_us);

  reg.gauge(prefix + "tree_bytes")->Set(static_cast<int64_t>(tree_bytes));
  reg.gauge(prefix + "dag_bytes")->Set(static_cast<int64_t>(dag_bytes));
  reg.gauge(prefix + "dag_nodes")
      ->Set(static_cast<int64_t>(point.dag.DagNodeCount()));
  reg.gauge(prefix + "logical_nodes")
      ->Set(static_cast<int64_t>(point.dag.LogicalNodeCount()));
  reg.gauge(prefix + "tree_build_ms")
      ->Set(static_cast<int64_t>(point.tree_build_ms + tree_index_ms));
  reg.gauge(prefix + "dag_build_ms")
      ->Set(static_cast<int64_t>(point.dag_build_ms + dag_index_ms));
  reg.gauge(prefix + "query_us")->Set(static_cast<int64_t>(query_us));
  return true;
}

bool Main(bool quick, bool baseline, const std::string& out_path) {
  PrintHeader(baseline ? "DAG scale: BASELINE (uncompressed tree corpus)"
                       : "DAG scale: DAG-compressed corpus");
  std::vector<double> scales =
      quick ? std::vector<double>{1, 4} : std::vector<double>{1, 10, 50};
  for (double scale : scales) {
    if (!RunPoint(MakeDblpPoint(scale), quick, baseline)) return false;
    if (!RunPoint(MakeBaseballPoint(scale), quick, baseline)) return false;
  }

  metrics::Registry& reg = metrics::Registry::Global();
  reg.gauge("bench.dag_scale.baseline")->Set(baseline ? 1 : 0);
  reg.gauge("bench.dag_scale.quick")->Set(quick ? 1 : 0);
  const size_t peak_rss = PeakRssBytes();
  reg.gauge("bench.dag_scale.peak_rss_bytes")
      ->Set(static_cast<int64_t>(peak_rss));
  std::printf("peak RSS %.1f MB\n", static_cast<double>(peak_rss) / 1e6);

  std::ofstream out(out_path);
  out << reg.DumpJson();
  std::printf("metrics written to %s\n", out_path.c_str());
  return true;
}

}  // namespace
}  // namespace xrefine::bench

int main(int argc, char** argv) {
  bool quick = false;
  bool baseline = false;
  std::string out_path = "BENCH_dag_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return xrefine::bench::Main(quick, baseline, out_path) ? 0 : 1;
}
