file(REMOVE_RECURSE
  "CMakeFiles/workload_eval_test.dir/workload_eval_test.cc.o"
  "CMakeFiles/workload_eval_test.dir/workload_eval_test.cc.o.d"
  "workload_eval_test"
  "workload_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
