// Quickstart: parse a small bibliography, build the index, and run XRefine
// on queries that need refinement — including the paper's Example 1
// ({database, publication} on data that uses "article"/"inproceedings").
//
//   ./build/examples/quickstart
#include <iostream>

#include "core/xrefine.h"
#include "index/index_builder.h"
#include "text/lexicon.h"
#include "xml/xml_parser.h"

namespace {

// The paper's Figure 1, abridged.
constexpr const char* kBibXml = R"(
<bib>
  <author>
    <name>John Martin</name>
    <publications>
      <inproceedings>
        <title>efficient XML keyword search on online database</title>
        <year>2003</year>
        <booktitle>sigmod</booktitle>
      </inproceedings>
      <article>
        <title>XML twig pattern matching</title>
        <year>2005</year>
        <journal>vldb</journal>
      </article>
    </publications>
  </author>
  <author>
    <name>Mary Smith</name>
    <publications>
      <inproceedings>
        <title>skyline computation over data stream</title>
        <year>2006</year>
        <booktitle>icde</booktitle>
      </inproceedings>
      <article>
        <title>machine learning for world wide web search</title>
        <year>2004</year>
        <journal>kdd</journal>
      </article>
    </publications>
    <hobby>tennis</hobby>
  </author>
</bib>
)";

void Show(const xrefine::core::XRefine& engine,
          const xrefine::xml::Document& doc, const std::string& query) {
  using xrefine::core::QueryToString;
  std::cout << "\nQuery: " << query << "\n";
  auto outcome = engine.RunText(query);
  std::cout << "  needs refinement: "
            << (outcome.needs_refinement ? "yes" : "no") << "\n";
  for (const auto& ranked : outcome.refined) {
    std::cout << "  RQ " << QueryToString(ranked.rq.keywords)
              << "  dSim=" << ranked.rq.dissimilarity
              << "  rank=" << ranked.rank << "\n";
    for (const auto& op : ranked.rq.applied_ops) {
      std::cout << "      op: " << op << "\n";
    }
    for (const auto& r : ranked.results) {
      auto node = doc.FindByDewey(r.dewey);
      std::cout << "      match " << doc.Describe(node) << ": "
                << doc.SubtreeText(node).substr(0, 60) << "\n";
    }
  }
}

}  // namespace

int main() {
  auto doc_or = xrefine::xml::ParseXml(kBibXml);
  if (!doc_or.ok()) {
    std::cerr << "parse failed: " << doc_or.status() << "\n";
    return 1;
  }
  xrefine::xml::Document doc = std::move(doc_or).value();

  auto corpus = xrefine::index::BuildIndex(doc);
  auto lexicon = xrefine::text::Lexicon::BuiltIn();

  xrefine::core::XRefineOptions options;
  options.top_k = 3;
  xrefine::core::XRefine engine(corpus.get(), &lexicon, options);

  std::cout << "Indexed " << doc.NodeCount() << " nodes, "
            << corpus->index().keyword_count() << " keywords\n";

  // Example 1 of the paper: "publication" does not occur; synonym
  // substitution should propose article/inproceedings.
  Show(engine, doc, "database publication");

  // Spelling error: "skylne" -> "skyline".
  Show(engine, doc, "skylne computation");

  // Spurious split: "on line data base" -> {online, database}.
  Show(engine, doc, "on line data base");

  // Acronym: "www search" -> world wide web.
  Show(engine, doc, "www search machine");

  // Over-restrictive: 2003 + skyline never co-occur.
  Show(engine, doc, "skyline computation 2003");

  // A query that needs no refinement.
  Show(engine, doc, "xml twig pattern");

  return 0;
}
