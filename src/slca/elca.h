// ELCA (Exclusive LCA) semantics, the XRank notion the paper's related work
// contrasts with SLCA: a node v is an ELCA of query Q iff the keyword
// occurrences in v's subtree still cover all of Q after excluding every
// descendant subtree that itself contains all of Q. Every SLCA is an ELCA;
// ELCA additionally returns ancestors that have their own independent
// witnesses. Provided as an alternative result semantics for the engine's
// consumers and as a baseline for comparisons.
#ifndef XREFINE_SLCA_ELCA_H_
#define XREFINE_SLCA_ELCA_H_

#include <vector>

#include "slca/slca_common.h"

namespace xrefine::slca {

/// Computes ELCA(lists) with one stack pass over the document-order merge
/// of the posting spans. Supports up to 64 lists.
std::vector<SlcaResult> Elca(const std::vector<PostingSpan>& lists,
                             const xml::NodeTypeTable& types);

}  // namespace xrefine::slca

#endif  // XREFINE_SLCA_ELCA_H_
