#include "xml/xml_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace xrefine::xml {

namespace {

/// Recursive-descent parser over an in-memory buffer. Tracks line numbers
/// for error messages.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  StatusOr<Document> Parse() {
    Document doc;
    SkipProlog();
    if (AtEnd()) return Error("document has no root element");
    Status st = ParseElement(&doc, kInvalidNodeId);
    if (!st.ok()) return st;
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < input_.size() ? input_[i] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& what) const {
    return Status::Corruption("XML parse error at line " +
                              std::to_string(line_) + ": " + what);
  }

  // Skips the XML declaration, DOCTYPE, comments, and PIs before the root.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return;
      if (Consume("<?")) {
        SkipUntil("?>");
      } else if (Consume("<!--")) {
        SkipUntil("-->");
      } else if (Consume("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Consume("<!--")) {
        SkipUntil("-->");
      } else if (Consume("<?")) {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd()) {
      if (Consume(terminator)) return;
      Advance();
    }
  }

  // DOCTYPE may contain a bracketed internal subset.
  void SkipDoctype() {
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) {
        Advance();
        return;
      }
      Advance();
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  // Decodes the predefined entities plus decimal/hex character references.
  std::string DecodeEntities(std::string_view raw) const {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos || semi - i > 10) {
        out.push_back('&');
        continue;
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) {
          out.push_back(static_cast<char>(code));
        } else {
          out.push_back('?');  // non-ASCII references degrade gracefully
        }
      } else {
        // Unknown entity: keep it verbatim so data is not lost.
        out.push_back('&');
        continue;
      }
      i = semi;
    }
    return out;
  }

  Status ParseAttributes(Document* doc, NodeId element) {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      char c = Peek();
      if (c == '>' || c == '/' || c == '?') return Status::OK();
      auto name_or = ParseName();
      if (!name_or.ok()) return name_or.status();
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value = DecodeEntities(input_.substr(start, pos_ - start));
      Advance();  // closing quote
      // Attribute values get the same whitespace treatment as element
      // character data. Without this, an attribute child kept padding that
      // a reparse of the written document would trim away — the document
      // was not stable under a write/parse round trip.
      if (options_.skip_whitespace_text) {
        value = std::string(TrimWhitespace(value));
      }
      if (options_.attributes_as_children) {
        NodeId attr = doc->AddChild(element, name_or.value());
        if (!value.empty()) doc->AppendText(attr, value);
      } else {
        doc->AppendText(element, value);
      }
    }
  }

  Status ParseElement(Document* doc, NodeId parent) {
    if (depth_ >= options_.max_depth) {
      return Error("element nesting exceeds max_depth " +
                   std::to_string(options_.max_depth));
    }
    ++depth_;
    Status st = ParseElementInner(doc, parent);
    --depth_;
    return st;
  }

  Status ParseElementInner(Document* doc, NodeId parent) {
    if (!Consume("<")) return Error("expected '<'");
    auto name_or = ParseName();
    if (!name_or.ok()) return name_or.status();
    NodeId element = (parent == kInvalidNodeId)
                         ? doc->CreateRoot(name_or.value())
                         : doc->AddChild(parent, name_or.value());
    XREFINE_RETURN_IF_ERROR(ParseAttributes(doc, element));
    if (Consume("/>")) return Status::OK();
    if (!Consume(">")) return Error("expected '>' to close start tag");
    return ParseContent(doc, element, name_or.value());
  }

  Status ParseContent(Document* doc, NodeId element,
                      const std::string& tag) {
    std::string pending_text;
    auto flush_text = [&]() {
      if (pending_text.empty()) return;
      std::string_view trimmed = options_.skip_whitespace_text
                                     ? TrimWhitespace(pending_text)
                                     : std::string_view(pending_text);
      if (!trimmed.empty()) doc->AppendText(element, trimmed);
      pending_text.clear();
    };

    while (true) {
      if (AtEnd()) return Error("unterminated element <" + tag + ">");
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          Consume("</");
          auto close_or = ParseName();
          if (!close_or.ok()) return close_or.status();
          if (close_or.value() != tag) {
            return Error("mismatched close tag </" + close_or.value() +
                         "> for <" + tag + ">");
          }
          SkipWhitespace();
          if (!Consume(">")) return Error("expected '>' in close tag");
          return Status::OK();
        }
        if (Consume("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (Consume("<![CDATA[")) {
          size_t start = pos_;
          while (!AtEnd() && input_.substr(pos_, 3) != "]]>") Advance();
          if (AtEnd()) return Error("unterminated CDATA");
          pending_text.append(input_.substr(start, pos_ - start));
          Consume("]]>");
          continue;
        }
        if (Consume("<?")) {
          SkipUntil("?>");
          continue;
        }
        flush_text();
        XREFINE_RETURN_IF_ERROR(ParseElement(doc, element));
        continue;
      }
      // Character data up to the next markup.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      pending_text += DecodeEntities(input_.substr(start, pos_ - start));
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t depth_ = 0;
};

}  // namespace

StatusOr<Document> ParseXml(std::string_view input,
                            const ParseOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

StatusOr<Document> ParseXmlFile(const std::string& path,
                                const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  return ParseXml(content, options);
}

}  // namespace xrefine::xml
